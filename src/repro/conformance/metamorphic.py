"""Metamorphic properties of the quantized operator library.

Differential oracles catch disagreement between implementations; the
metamorphic layer catches agreement on the *wrong answer* by checking
relations that must hold between runs of the same pipeline on
transformed inputs:

* **GEMM transpose**: ``(A·B)ᵀ`` computed as ``Bᵀ·Aᵀ`` must land inside
  the same Table 5 envelope, and the two renderings must agree with
  each other to within twice the envelope (both sit within it of the
  same float truth).
* **GEMM associativity**: ``(A·B)·C`` vs ``A·(B·C)`` against float
  ``A·B·C``, with a compounded envelope (two quantized stages).
* **Tiling invariance**: the chunking hint (``gemm_chunks``) repartitions
  the lowering; results must stay in-envelope and mutually consistent.
* **Identity / annihilator**: ``A·I`` stays in-envelope; ``A·0`` is
  exactly zero, bit for bit.
* **Reduction permutation-invariance**: mean/max are insensitive to any
  element permutation up to per-tile requantization (the permuted run
  re-tiles the data, so scales differ — the float oracle bounds both).
* **Precision monotonicity**: §10's iterative-portions GEMM with the
  input residual split must measurably *refine* the plain quantized
  result — a regression that quietly degrades ``tpu_gemm_precise`` to
  no-better-than-plain trips this even while both stay in-envelope.

Every check is deterministic in the seed (see
:func:`repro.conformance.oracles.derive_rng`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro import ops
from repro.conformance.oracles import _as_array, derive_rng, pipeline_context
from repro.metrics.errors import ErrorBound, bound_for_op, rmse_percent
from repro.ops.precision import precision_gain


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of one metamorphic check."""

    name: str
    ok: bool
    details: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "details": dict(self.details)}


def _scaled(bound: ErrorBound, factor: float) -> ErrorBound:
    return ErrorBound(
        bound.mape_percent * factor,
        bound.rmse_percent * factor,
        bound.max_rel_percent * factor,
        source=f"{bound.source} x{factor:g}",
    )


def gemm_transpose(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "gemm-transpose")
    a = rng.normal(size=(97, 66)) * 3.0
    b = rng.normal(size=(66, 127)) * 3.0
    truth = a @ b
    direct = ops.tpu_gemm(pipeline_context(), a, b)
    via_t = ops.tpu_gemm(pipeline_context(), b.T, a.T).T
    bound = bound_for_op("gemm")
    c1 = bound.check(direct, truth)
    c2 = bound.check(via_t, truth)
    mutual = rmse_percent(via_t, direct)
    ok = c1.ok and c2.ok and mutual <= 2.0 * bound.rmse_percent
    return PropertyResult(
        "gemm-transpose", ok,
        {"rmse_direct": c1.rmse_percent, "rmse_transposed": c2.rmse_percent,
         "rmse_mutual": mutual},
    )


def gemm_associativity(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "gemm-associativity")
    a = rng.normal(size=(65, 63)) * 2.0
    b = rng.normal(size=(63, 66)) * 2.0
    c = rng.normal(size=(66, 64)) * 2.0
    truth = a @ b @ c
    ctx = pipeline_context()
    left = ops.tpu_gemm(ctx, ops.tpu_gemm(ctx, a, b), c)
    ctx2 = pipeline_context()
    right = ops.tpu_gemm(ctx2, a, ops.tpu_gemm(ctx2, b, c))
    # Two quantized GEMM stages compound: the intermediate is re-quantized
    # on entry to the second product, so allow 3x the single-stage budget.
    bound = _scaled(bound_for_op("gemm"), 3.0)
    cl = bound.check(left, truth)
    cr = bound.check(right, truth)
    mutual = rmse_percent(right, left)
    ok = cl.ok and cr.ok and mutual <= 2.0 * bound.rmse_percent
    return PropertyResult(
        "gemm-associativity", ok,
        {"rmse_left": cl.rmse_percent, "rmse_right": cr.rmse_percent,
         "rmse_mutual": mutual},
    )


def gemm_tiling_invariance(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "gemm-tiling")
    a = rng.normal(size=(130, 97)) * 3.0
    b = rng.normal(size=(97, 65)) * 3.0
    truth = a @ b
    bound = bound_for_op("gemm")
    results = [
        ops.tpu_gemm(pipeline_context(), a, b, chunks=chunks)
        for chunks in (1, 2, 4)
    ]
    checks = [bound.check(r, truth) for r in results]
    mutual = max(
        rmse_percent(results[i], results[0]) for i in range(1, len(results))
    )
    ok = all(c.ok for c in checks) and mutual <= 2.0 * bound.rmse_percent
    return PropertyResult(
        "gemm-tiling-invariance", ok,
        {"rmse_worst": max(c.rmse_percent for c in checks),
         "rmse_mutual": mutual},
    )


def gemm_identity_and_zero(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "gemm-identity")
    a = rng.normal(size=(97, 66)) * 3.0
    eye = np.eye(66)
    zero = np.zeros((66, 63))
    through_eye = ops.tpu_gemm(pipeline_context(), a, eye)
    through_zero = ops.tpu_gemm(pipeline_context(), a, zero)
    bound = bound_for_op("gemm")
    ci = bound.check(through_eye, a)
    zero_exact = not np.any(through_zero)
    return PropertyResult(
        "gemm-identity-zero", ci.ok and zero_exact,
        {"rmse_identity": ci.rmse_percent, "zero_exact": float(zero_exact)},
    )


def reduction_permutation(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "reduction-permutation")
    a = rng.uniform(0.5, 6.0, size=(97, 65))
    perm = rng.permutation(a.size)
    shuffled = a.ravel()[perm].reshape(a.shape)
    bound = bound_for_op("reduction")
    mean_base = ops.tpu_mean(pipeline_context(), a)
    mean_perm = ops.tpu_mean(pipeline_context(), shuffled)
    max_base = ops.tpu_max(pipeline_context(), a)
    max_perm = ops.tpu_max(pipeline_context(), shuffled)
    truth_mean = _as_array(float(np.mean(a)))
    truth_max = _as_array(float(np.max(a)))
    checks = [
        bound.check(_as_array(mean_base), truth_mean),
        bound.check(_as_array(mean_perm), truth_mean),
        bound.check(_as_array(max_base), truth_max),
        bound.check(_as_array(max_perm), truth_max),
    ]
    ok = all(c.ok for c in checks)
    return PropertyResult(
        "reduction-permutation", ok,
        {"mean_delta": abs(mean_perm - mean_base),
         "max_delta": abs(max_perm - max_base),
         "rmse_worst": max(c.rmse_percent for c in checks)},
    )


def pairwise_commutativity(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "pairwise-commutativity")
    a = rng.normal(size=(66, 127)) * 4.0
    b = rng.normal(size=(66, 127)) * 4.0
    # add and mul are commutative in exact math AND per-tile: swapping the
    # operands swaps which scale quantizes which matrix, so results match
    # bit-for-bit only when the kernels treat operands symmetrically.
    r_ab = ops.tpu_add(pipeline_context(), a, b)
    r_ba = ops.tpu_add(pipeline_context(), b, a)
    m_ab = ops.tpu_mul(pipeline_context(), a, b)
    m_ba = ops.tpu_mul(pipeline_context(), b, a)
    add_exact = r_ab.tobytes() == r_ba.tobytes()
    mul_exact = m_ab.tobytes() == m_ba.tobytes()
    return PropertyResult(
        "pairwise-commutativity", add_exact and mul_exact,
        {"add_bit_identical": float(add_exact),
         "mul_bit_identical": float(mul_exact)},
    )


def precision_monotonicity(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "precision-monotonicity")
    a = rng.normal(size=(63, 128)) * 3.0
    b = rng.normal(size=(128, 65)) * 3.0
    truth = a @ b
    # Measured across seeds: the input residual split reliably buys
    # ~1.4x (0.35% -> 0.24% RMSE); gate at 1.15x to leave headroom
    # while still catching a degradation to parity with plain.
    gain = precision_gain(pipeline_context, a, b, k_split=4, input_split=True)
    precise = ops.tpu_gemm_precise(
        pipeline_context(), a, b, k_split=4, input_split=True
    )
    check = bound_for_op("precise").check(precise, truth)
    ok = check.ok and gain >= 1.15
    return PropertyResult(
        "precision-monotonicity", ok,
        {"gain": gain if np.isfinite(gain) else -1.0,
         "rmse_precise": check.rmse_percent},
    )


#: The full metamorphic battery, in report order.
PROPERTIES: List[Callable[[int], PropertyResult]] = [
    gemm_transpose,
    gemm_associativity,
    gemm_tiling_invariance,
    gemm_identity_and_zero,
    reduction_permutation,
    pairwise_commutativity,
    precision_monotonicity,
]


def run_properties(seed: int) -> List[PropertyResult]:
    """Run every metamorphic check for one seed."""
    return [prop(seed) for prop in PROPERTIES]
