"""Metamorphic properties of the quantized operator library.

Differential oracles catch disagreement between implementations; the
metamorphic layer catches agreement on the *wrong answer* by checking
relations that must hold between runs of the same pipeline on
transformed inputs:

* **GEMM transpose**: ``(A·B)ᵀ`` computed as ``Bᵀ·Aᵀ`` must land inside
  the same Table 5 envelope, and the two renderings must agree with
  each other to within twice the envelope (both sit within it of the
  same float truth).
* **GEMM associativity**: ``(A·B)·C`` vs ``A·(B·C)`` against float
  ``A·B·C``, with a compounded envelope (two quantized stages).
* **Tiling invariance**: the chunking hint (``gemm_chunks``) repartitions
  the lowering; results must stay in-envelope and mutually consistent.
* **Identity / annihilator**: ``A·I`` stays in-envelope; ``A·0`` is
  exactly zero, bit for bit.
* **Reduction permutation-invariance**: mean/max are insensitive to any
  element permutation up to per-tile requantization (the permuted run
  re-tiles the data, so scales differ — the float oracle bounds both).
* **Precision monotonicity**: §10's iterative-portions GEMM with the
  input residual split must measurably *refine* the plain quantized
  result — a regression that quietly degrades ``tpu_gemm_precise`` to
  no-better-than-plain trips this even while both stay in-envelope.

Every check is deterministic in the seed (see
:func:`repro.conformance.oracles.derive_rng`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro import ops
from repro.conformance.oracles import _as_array, derive_rng, pipeline_context
from repro.metrics.errors import ErrorBound, bound_for_op, rmse_percent
from repro.ops.precision import precision_gain


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of one metamorphic check."""

    name: str
    ok: bool
    details: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "details": dict(self.details)}


def _scaled(bound: ErrorBound, factor: float) -> ErrorBound:
    return ErrorBound(
        bound.mape_percent * factor,
        bound.rmse_percent * factor,
        bound.max_rel_percent * factor,
        source=f"{bound.source} x{factor:g}",
    )


def gemm_transpose(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "gemm-transpose")
    a = rng.normal(size=(97, 66)) * 3.0
    b = rng.normal(size=(66, 127)) * 3.0
    truth = a @ b
    direct = ops.tpu_gemm(pipeline_context(), a, b)
    via_t = ops.tpu_gemm(pipeline_context(), b.T, a.T).T
    bound = bound_for_op("gemm")
    c1 = bound.check(direct, truth)
    c2 = bound.check(via_t, truth)
    mutual = rmse_percent(via_t, direct)
    ok = c1.ok and c2.ok and mutual <= 2.0 * bound.rmse_percent
    return PropertyResult(
        "gemm-transpose", ok,
        {"rmse_direct": c1.rmse_percent, "rmse_transposed": c2.rmse_percent,
         "rmse_mutual": mutual},
    )


def gemm_associativity(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "gemm-associativity")
    a = rng.normal(size=(65, 63)) * 2.0
    b = rng.normal(size=(63, 66)) * 2.0
    c = rng.normal(size=(66, 64)) * 2.0
    truth = a @ b @ c
    ctx = pipeline_context()
    left = ops.tpu_gemm(ctx, ops.tpu_gemm(ctx, a, b), c)
    ctx2 = pipeline_context()
    right = ops.tpu_gemm(ctx2, a, ops.tpu_gemm(ctx2, b, c))
    # Two quantized GEMM stages compound: the intermediate is re-quantized
    # on entry to the second product, so allow 3x the single-stage budget.
    bound = _scaled(bound_for_op("gemm"), 3.0)
    cl = bound.check(left, truth)
    cr = bound.check(right, truth)
    mutual = rmse_percent(right, left)
    ok = cl.ok and cr.ok and mutual <= 2.0 * bound.rmse_percent
    return PropertyResult(
        "gemm-associativity", ok,
        {"rmse_left": cl.rmse_percent, "rmse_right": cr.rmse_percent,
         "rmse_mutual": mutual},
    )


def gemm_tiling_invariance(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "gemm-tiling")
    a = rng.normal(size=(130, 97)) * 3.0
    b = rng.normal(size=(97, 65)) * 3.0
    truth = a @ b
    bound = bound_for_op("gemm")
    results = [
        ops.tpu_gemm(pipeline_context(), a, b, chunks=chunks)
        for chunks in (1, 2, 4)
    ]
    checks = [bound.check(r, truth) for r in results]
    mutual = max(
        rmse_percent(results[i], results[0]) for i in range(1, len(results))
    )
    ok = all(c.ok for c in checks) and mutual <= 2.0 * bound.rmse_percent
    return PropertyResult(
        "gemm-tiling-invariance", ok,
        {"rmse_worst": max(c.rmse_percent for c in checks),
         "rmse_mutual": mutual},
    )


def gemm_identity_and_zero(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "gemm-identity")
    a = rng.normal(size=(97, 66)) * 3.0
    eye = np.eye(66)
    zero = np.zeros((66, 63))
    through_eye = ops.tpu_gemm(pipeline_context(), a, eye)
    through_zero = ops.tpu_gemm(pipeline_context(), a, zero)
    bound = bound_for_op("gemm")
    ci = bound.check(through_eye, a)
    zero_exact = not np.any(through_zero)
    return PropertyResult(
        "gemm-identity-zero", ci.ok and zero_exact,
        {"rmse_identity": ci.rmse_percent, "zero_exact": float(zero_exact)},
    )


def reduction_permutation(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "reduction-permutation")
    a = rng.uniform(0.5, 6.0, size=(97, 65))
    perm = rng.permutation(a.size)
    shuffled = a.ravel()[perm].reshape(a.shape)
    bound = bound_for_op("reduction")
    mean_base = ops.tpu_mean(pipeline_context(), a)
    mean_perm = ops.tpu_mean(pipeline_context(), shuffled)
    max_base = ops.tpu_max(pipeline_context(), a)
    max_perm = ops.tpu_max(pipeline_context(), shuffled)
    truth_mean = _as_array(float(np.mean(a)))
    truth_max = _as_array(float(np.max(a)))
    checks = [
        bound.check(_as_array(mean_base), truth_mean),
        bound.check(_as_array(mean_perm), truth_mean),
        bound.check(_as_array(max_base), truth_max),
        bound.check(_as_array(max_perm), truth_max),
    ]
    ok = all(c.ok for c in checks)
    return PropertyResult(
        "reduction-permutation", ok,
        {"mean_delta": abs(mean_perm - mean_base),
         "max_delta": abs(max_perm - max_base),
         "rmse_worst": max(c.rmse_percent for c in checks)},
    )


def pairwise_commutativity(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "pairwise-commutativity")
    a = rng.normal(size=(66, 127)) * 4.0
    b = rng.normal(size=(66, 127)) * 4.0
    # add and mul are commutative in exact math AND per-tile: swapping the
    # operands swaps which scale quantizes which matrix, so results match
    # bit-for-bit only when the kernels treat operands symmetrically.
    r_ab = ops.tpu_add(pipeline_context(), a, b)
    r_ba = ops.tpu_add(pipeline_context(), b, a)
    m_ab = ops.tpu_mul(pipeline_context(), a, b)
    m_ba = ops.tpu_mul(pipeline_context(), b, a)
    add_exact = r_ab.tobytes() == r_ba.tobytes()
    mul_exact = m_ab.tobytes() == m_ba.tobytes()
    return PropertyResult(
        "pairwise-commutativity", add_exact and mul_exact,
        {"add_bit_identical": float(add_exact),
         "mul_bit_identical": float(mul_exact)},
    )


def precision_monotonicity(seed: int) -> PropertyResult:
    rng = derive_rng(seed, "metamorphic", "precision-monotonicity")
    a = rng.normal(size=(63, 128)) * 3.0
    b = rng.normal(size=(128, 65)) * 3.0
    truth = a @ b
    # Measured across seeds: the input residual split reliably buys
    # ~1.4x (0.35% -> 0.24% RMSE); gate at 1.15x to leave headroom
    # while still catching a degradation to parity with plain.
    gain = precision_gain(pipeline_context, a, b, k_split=4, input_split=True)
    precise = ops.tpu_gemm_precise(
        pipeline_context(), a, b, k_split=4, input_split=True
    )
    check = bound_for_op("precise").check(precise, truth)
    ok = check.ok and gain >= 1.15
    return PropertyResult(
        "precision-monotonicity", ok,
        {"gain": gain if np.isfinite(gain) else -1.0,
         "rmse_precise": check.rmse_percent},
    )


def conv_im2col_vs_direct(seed: int) -> PropertyResult:
    """Two genuinely different conv lowerings must agree.

    ``tpu_stencil2d`` lowers a single-plane convolution directly to a
    halo-tiled conv2D instruction stream; ``tpu_conv2d_nn`` lowers the
    same math through host im2col and the §7.1.2 patch×kernel GEMM.  On
    a 1-channel/1-filter problem both must land in the same envelope of
    the float truth and agree mutually — a geometry bug in either path
    (im2col patch ordering, halo arithmetic) breaks the relation even
    when each path is self-consistent.
    """
    rng = derive_rng(seed, "metamorphic", "conv-im2col-direct")
    x = rng.normal(size=(33, 29)) * 2.0
    # 3x3, like the catalog's conv2d-stencil case: the "conv2d" family
    # envelope is calibrated for small stencils (a 5x5 sums 25 quantized
    # products and sits right on the 1 % RMSE ceiling).
    k = rng.normal(size=(3, 3))
    truth = _conv2d_valid_ref(x, k)
    direct = ops.tpu_stencil2d(pipeline_context(), x, k)
    via_nn = ops.tpu_conv2d_nn(
        pipeline_context(), x[None, None], k[None, None]
    )[0, 0]
    b_direct = bound_for_op("conv2d")
    b_nn = bound_for_op("conv2d_nn")
    cd = b_direct.check(direct, truth)
    cn = b_nn.check(via_nn, truth)
    mutual = rmse_percent(via_nn, direct)
    ok = cd.ok and cn.ok and mutual <= b_direct.rmse_percent + b_nn.rmse_percent
    return PropertyResult(
        "conv-im2col-vs-direct", ok,
        {"rmse_direct": cd.rmse_percent, "rmse_im2col": cn.rmse_percent,
         "rmse_mutual": mutual},
    )


def pool_translation_covariance(seed: int) -> PropertyResult:
    """Pooling commutes with stride-aligned translation.

    Dropping the first window of rows and columns from the input must
    drop exactly the first output row and column: ``pool(x[sy:, sx:]) ==
    pool(x)[1:, 1:]`` in exact math.  Quantized, the shifted run re-scales
    to its own data range, so both renderings are gated against the float
    truth and against each other within the compounded envelope.
    """
    rng = derive_rng(seed, "metamorphic", "pool-translation")
    a = rng.normal(size=(41, 37)) * 4.0
    window, stride = (2, 2), (2, 2)
    bound = bound_for_op("pool")
    results = {}
    for kind in ("max", "avg"):
        base = ops.tpu_pool2d(
            pipeline_context(), a, window=window, stride=stride, kind=kind
        )
        shifted = ops.tpu_pool2d(
            pipeline_context(), a[stride[0]:, stride[1]:],
            window=window, stride=stride, kind=kind,
        )
        overlap_base = base[1 : 1 + shifted.shape[0], 1 : 1 + shifted.shape[1]]
        truth = _pool_valid_ref(a, window, stride, kind)[
            1 : 1 + shifted.shape[0], 1 : 1 + shifted.shape[1]
        ]
        cb = bound.check(overlap_base, truth)
        cs = bound.check(shifted[: overlap_base.shape[0], : overlap_base.shape[1]],
                         truth)
        mutual = rmse_percent(
            shifted[: overlap_base.shape[0], : overlap_base.shape[1]],
            overlap_base,
        )
        results[kind] = (cb, cs, mutual)
    ok = all(
        cb.ok and cs.ok and mutual <= 2.0 * bound.rmse_percent
        for cb, cs, mutual in results.values()
    )
    return PropertyResult(
        "pool-translation-covariance", ok,
        {f"rmse_mutual_{kind}": mutual for kind, (_, _, mutual) in results.items()},
    )


def _conv2d_valid_ref(data: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    from numpy.lib.stride_tricks import sliding_window_view

    windows = sliding_window_view(data, kernel.shape)
    return np.tensordot(windows, kernel, axes=([2, 3], [0, 1]))


def _pool_valid_ref(a: np.ndarray, window, stride, kind: str) -> np.ndarray:
    from numpy.lib.stride_tricks import sliding_window_view

    windows = sliding_window_view(a, window)[:: stride[0], :: stride[1]]
    return windows.max(axis=(2, 3)) if kind == "max" else windows.mean(axis=(2, 3))


#: NN-extension properties, runnable standalone by the ``nn`` suite.
NN_PROPERTIES: List[Callable[[int], PropertyResult]] = [
    conv_im2col_vs_direct,
    pool_translation_covariance,
]

#: The full metamorphic battery, in report order.
PROPERTIES: List[Callable[[int], PropertyResult]] = [
    gemm_transpose,
    gemm_associativity,
    gemm_tiling_invariance,
    gemm_identity_and_zero,
    reduction_permutation,
    pairwise_commutativity,
    precision_monotonicity,
    *NN_PROPERTIES,
]


def run_properties(seed: int) -> List[PropertyResult]:
    """Run every metamorphic check for one seed."""
    return [prop(seed) for prop in PROPERTIES]
