"""Conformance subsystem: differential oracles, accuracy-regression
gates, metamorphic properties, format fuzzing, and fault-injection
campaigns.

Entry point: :func:`repro.conformance.runner.run_conformance`, exposed
on the CLI as ``repro conformance``.  See ``docs/conformance.md``.
"""

from repro.conformance.campaign import (
    DEFAULT_SCENARIOS,
    FaultPlan,
    FaultScenario,
    ScenarioResult,
    run_campaign,
)
from repro.conformance.cases import APP_PARAMS, OP_CASES, OpCase
from repro.conformance.format_fuzz import MUTATIONS, FuzzReport, run_fuzz
from repro.conformance.integrity import (
    DEFAULT_INTEGRITY_SCENARIOS,
    CorruptionPlan,
    IntegrityResult,
    IntegrityScenario,
    run_integrity_campaign,
)
from repro.conformance.metamorphic import (
    PROPERTIES,
    PropertyResult,
    run_properties,
)
from repro.conformance.oracles import (
    OracleOutcome,
    app_oracles,
    derive_rng,
    pipeline_context,
    run_oracles,
    scalar_context,
)
from repro.conformance.runner import (
    SUITES,
    ConformanceReport,
    parse_suites,
    run_conformance,
)
from repro.conformance.shard import (
    SHARD_SCENARIOS,
    ShardReport,
    ShardScenario,
    run_shard,
)

__all__ = [
    "APP_PARAMS",
    "ConformanceReport",
    "CorruptionPlan",
    "DEFAULT_INTEGRITY_SCENARIOS",
    "DEFAULT_SCENARIOS",
    "FaultPlan",
    "FaultScenario",
    "IntegrityResult",
    "IntegrityScenario",
    "FuzzReport",
    "MUTATIONS",
    "OP_CASES",
    "OpCase",
    "OracleOutcome",
    "PROPERTIES",
    "PropertyResult",
    "SHARD_SCENARIOS",
    "SUITES",
    "ScenarioResult",
    "ShardReport",
    "ShardScenario",
    "app_oracles",
    "derive_rng",
    "parse_suites",
    "pipeline_context",
    "run_campaign",
    "run_conformance",
    "run_fuzz",
    "run_integrity_campaign",
    "run_oracles",
    "run_properties",
    "run_shard",
    "scalar_context",
]
