"""Silent-data-corruption campaigns over the integrity-checked stack.

The fail-stop campaigns (:mod:`repro.conformance.campaign`) prove the
serving contract when devices *raise*.  These scenarios prove it when
devices **lie**: each arms a seeded corruption injector — output bit
flips, stuck-tile replay, quantization-scale skew — on a platform
served with ``integrity="abft"`` or ``"vote"``, drives a closed-loop
multi-tenant workload, and asserts the SDC contract from the outside:

* **100% detection** — every corrupted tile the injector produced was
  caught (``sdc_detected`` accounts for every firing; for bit flips,
  whose deviation is >= 32 output quanta by construction, the match is
  exact).  Nothing corrupt reached a client: every delivered result is
  bit-identical to the solo clean lowering of the same request.
* **zero false positives** — a clean run under the same verification
  reports no incidents, and every request still delivers.
* **quarantine** — a persistently corrupting device is pulled from
  rotation (``quarantines >= 1``) without opening its circuit breaker.
* the fail-stop invariants still hold: zero lost, exactly-once
  (proven from the observer event stream), accounting balance.

Scenarios are deterministic in the campaign seed: the workload RNG and
every injector RNG derive from it.
"""

from __future__ import annotations

import asyncio
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.conformance.oracles import derive_rng
from repro.edgetpu.isa import Opcode
from repro.errors import DeviceFailure, QueueFull, RequestTimeout
from repro.host.platform import Platform
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.runtime.tensorizer import Tensorizer
from repro.serve.server import ServeConfig, TpuServer


@dataclass(frozen=True)
class CorruptionPlan:
    """One armed corruption injector on one device."""

    device: int
    #: "bitflip", "stuck", or "skew" (see FAULT_MODES).
    mode: str
    after_instructions: int = 0
    #: -1 = corrupts forever; positive = that many corrupted transmits.
    failures: int = -1


@dataclass(frozen=True)
class IntegrityScenario:
    """One SDC campaign scenario: topology, workload, defense, faults."""

    name: str
    description: str
    integrity: str = "abft"
    tpus: int = 4
    tenants: int = 3
    requests_per_tenant: int = 3
    #: Square GEMM size per request (m = k = n = size).
    size: int = 96
    corruptions: Tuple[CorruptionPlan, ...] = ()
    #: Scenario must detect SDC (vacuous otherwise); clean scenarios
    #: instead require *zero* incidents (the false-positive gate).
    expect_detections: bool = True
    #: Every injector firing must map to a detection (bit flips only:
    #: their deviation is above the ABFT bound by construction).
    exact_detection: bool = False
    #: A device must enter quarantine during the run.
    expect_quarantine: bool = True


#: The default SDC campaign: every corruption mode, both defenses, and
#: the clean-traffic false-positive / overhead gates.
DEFAULT_INTEGRITY_SCENARIOS: Tuple[IntegrityScenario, ...] = (
    IntegrityScenario(
        name="clean-abft",
        description="no faults under abft verification: zero false "
        "positives, every request delivers bit-identical",
        corruptions=(),
        expect_detections=False,
        expect_quarantine=False,
    ),
    IntegrityScenario(
        name="bitflip-abft",
        description="one device flips high-order output bits forever; "
        "abft catches every corrupted tile and quarantines it",
        corruptions=(CorruptionPlan(device=0, mode="bitflip"),),
        exact_detection=True,
    ),
    IntegrityScenario(
        name="stuck-abft",
        description="one device replays a stale tile on every transmit; "
        "abft detects the replays and the pool routes around it",
        corruptions=(CorruptionPlan(device=1, mode="stuck"),),
    ),
    IntegrityScenario(
        name="skew-abft",
        description="one device mis-applies the requantization scale "
        "(x1.25); the checksum deviation exceeds the error bound",
        corruptions=(CorruptionPlan(device=2, mode="skew"),),
    ),
    IntegrityScenario(
        name="skew-transient-abft",
        description="a scale skew that clears after three transmits; "
        "the device is quarantined, then re-earns trust on probation",
        corruptions=(CorruptionPlan(device=0, mode="skew", failures=3),),
    ),
    IntegrityScenario(
        name="bitflip-vote",
        description="dual-execution voting catches a bit-flipping "
        "device by witness disagreement + checksum adjudication",
        integrity="vote",
        corruptions=(CorruptionPlan(device=0, mode="bitflip"),),
        exact_detection=True,
    ),
    IntegrityScenario(
        name="clean-off",
        description="integrity off on clean traffic: the baseline path "
        "performs no verification at all and stays bit-identical",
        integrity="off",
        corruptions=(),
        expect_detections=False,
        expect_quarantine=False,
    ),
)


@dataclass
class IntegrityResult:
    """Outcome of one SDC scenario, with its invariant verdicts."""

    scenario: IntegrityScenario
    snapshot: dict
    events: Dict[str, int] = field(default_factory=dict)
    #: Corrupted transmits the injectors actually produced.
    injected: int = 0
    #: Delivered results that differed from the solo clean reference.
    mismatches: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "name": self.scenario.name,
            "description": self.scenario.description,
            "integrity": self.scenario.integrity,
            "outcomes": dict(self.snapshot["outcomes"]),
            "integrity_counters": dict(self.snapshot["integrity"]),
            "injected": self.injected,
            "events": dict(sorted(self.events.items())),
            "mismatches": self.mismatches,
            "violations": list(self.violations),
            "ok": self.ok,
        }


async def _integrity_client(
    server: TpuServer,
    tenant: str,
    requests: List[OperationRequest],
    results: dict,
) -> None:
    for i, request in enumerate(requests):
        try:
            results[(tenant, i)] = await server.submit(request)
        except QueueFull:
            results[("__queue_full__", tenant, i)] = True
        except (DeviceFailure, RequestTimeout):
            continue  # surfaced failure — counted server-side


async def _run_integrity_scenario(
    scenario: IntegrityScenario, seed: int
) -> IntegrityResult:
    rng = derive_rng(seed, "integrity", scenario.name)
    platform = Platform.with_tpus(scenario.tpus)
    for k, plan in enumerate(scenario.corruptions):
        platform.devices[plan.device % scenario.tpus].inject_fault(
            after_instructions=plan.after_instructions,
            failures=plan.failures,
            reason=f"integrity:{scenario.name}",
            mode=plan.mode,
            seed=seed * 1000 + k,
        )

    total = scenario.tenants * scenario.requests_per_tenant
    config = ServeConfig(
        max_queue_depth=max(total * 2, 16),
        breaker_cooldown=0.01,
        time_scale=0.0,
        integrity=scenario.integrity,
        quarantine_seconds=0.01,
    )
    b = rng.integers(-64, 64, size=(scenario.size, scenario.size)).astype(
        np.float32
    )
    per_tenant: Dict[str, List[OperationRequest]] = {}
    for t in range(scenario.tenants):
        tenant = f"tenant{t}"
        per_tenant[tenant] = [
            OperationRequest(
                task_id=0,
                opcode=Opcode.CONV2D,
                inputs=(
                    rng.integers(
                        -64, 64, size=(scenario.size, scenario.size)
                    ).astype(np.float32),
                    b,
                ),
                quant=QuantMode.SCALE,
                attrs={"gemm": True},
                tenant=tenant,
            )
            for _ in range(scenario.requests_per_tenant)
        ]

    event_log: List[Tuple[str, int, int]] = []
    results: dict = {}
    async with TpuServer(platform, config) as server:
        server.pool.observer = lambda event, serve_id, device: event_log.append(
            (event, serve_id, device)
        )
        await asyncio.gather(
            *(
                _integrity_client(server, tenant, reqs, results)
                for tenant, reqs in per_tenant.items()
            )
        )
        await server.drain()
        snapshot = server.snapshot()

    result = IntegrityResult(
        scenario=scenario,
        snapshot=snapshot,
        events=dict(Counter(event for event, _, _ in event_log)),
        injected=sum(
            d.fault_injector.fired
            for d in platform.devices
            if d.fault_injector is not None
        ),
    )
    _check_integrity_invariants(result, event_log, per_tenant, results, platform)
    return result


def _check_integrity_invariants(
    result: IntegrityResult,
    event_log: List[Tuple[str, int, int]],
    per_tenant: Dict[str, List[OperationRequest]],
    results: dict,
    platform: Platform,
) -> None:
    scenario = result.scenario
    out = result.snapshot["outcomes"]
    integ = result.snapshot["integrity"]
    violations = result.violations

    # Fail-stop invariants carry over: zero lost, accounting balance.
    if out["lost"] != 0:
        violations.append(f"lost != 0: {out['lost']}")
    balance = out["rejected"] + out["completed"] + out["failed"] + out["timeouts"]
    if out["submitted"] != balance:
        violations.append(
            f"accounting imbalance: submitted={out['submitted']} != {balance}"
        )
    # Corruption is recoverable by re-dispatch: nothing may fail loudly
    # in a pool with healthy devices left, let alone silently.
    if out["completed"] != out["submitted"] - out["rejected"]:
        violations.append(
            f"only {out['completed']}/{out['submitted']} requests delivered"
        )

    # Exactly-once, proven from the observer event stream.
    by_id: Dict[int, Counter] = defaultdict(Counter)
    for event, serve_id, _ in event_log:
        by_id[serve_id][event] += 1
    for serve_id, counts in sorted(by_id.items()):
        if counts["deliver"] > 1:
            violations.append(
                f"serve_id {serve_id} delivered {counts['deliver']} times"
            )
        if counts["deliver"] and counts["give-up"]:
            violations.append(f"serve_id {serve_id} both delivered and gave up")

    # 100% detection: no corrupt bytes may reach a client.  Every
    # delivered result must be bit-identical to the solo clean lowering.
    reference = Tensorizer(platform.config.edgetpu, cpu=platform.cpu)
    for tenant, reqs in per_tenant.items():
        for i, request in enumerate(reqs):
            got = results.get((tenant, i))
            if got is None:
                continue
            want = reference.lower(request).result
            if not np.array_equal(got, want):
                result.mismatches += 1
    if result.mismatches:
        violations.append(
            f"{result.mismatches} delivered results differ from the clean "
            "reference (corruption escaped detection)"
        )

    if scenario.expect_detections:
        if result.injected == 0:
            violations.append("no injected corruption fired (vacuous scenario)")
        if integ["sdc_detected"] == 0:
            violations.append("corruption injected but zero detections")
        if scenario.exact_detection and integ["sdc_detected"] != result.injected:
            violations.append(
                f"detection gap: {result.injected} corrupted transmits, "
                f"{integ['sdc_detected']} detections"
            )
        if integ["sdc_corrected"] == 0:
            violations.append("detections were never corrected by re-dispatch")
    else:
        # False-positive gate: clean traffic must verify clean.
        if integ["sdc_incidents"] != 0:
            violations.append(
                f"false positives on clean traffic: {integ['sdc_incidents']}"
            )
        if scenario.integrity == "off":
            if integ["tiles_verified"] != 0:
                violations.append(
                    "integrity off but tiles were verified (overhead leak)"
                )
        elif integ["tiles_verified"] == 0:
            violations.append("verification enabled but no tiles checked")

    quarantines = integ["quarantines"]
    if scenario.expect_quarantine and quarantines == 0:
        violations.append("corrupting device never quarantined")
    if not scenario.expect_quarantine and quarantines != 0:
        violations.append(f"unexpected quarantines on clean traffic: {quarantines}")
    # SDC feeds the quarantine, never the circuit breaker.
    breakers_opened = sum(
        b["opened"] for b in result.snapshot["breakers"].values()
    )
    if breakers_opened:
        violations.append(
            f"circuit breaker opened {breakers_opened} times on SDC-only faults"
        )


def run_integrity_campaign(
    seed: int,
    scenarios: Optional[Tuple[IntegrityScenario, ...]] = None,
) -> List[IntegrityResult]:
    """Run every SDC scenario to completion, each on a private loop."""
    return [
        asyncio.run(_run_integrity_scenario(scenario, seed))
        for scenario in (scenarios or DEFAULT_INTEGRITY_SCENARIOS)
    ]
