"""Compiled-plan conformance: cached replay must be invisible.

The AOT plan cache (:mod:`repro.plan`) is a pure performance transform —
lower once, bind many.  This suite proves the "pure" part from the
outside, with three independent properties:

1. **Replay bit-identity** — for every operator in the catalog and every
   Table 3 application, three runs must agree byte-for-byte: a plan-free
   pipeline run, a cold run that *captures* plans into a fresh cache,
   and a warm run that *replays* from that cache.  The warm run must
   actually replay (``plan_replays > 0``), so the equality is not
   vacuous.
2. **Byte-exact round-trips** — every plan those runs captured must
   survive ``serialize_plan → parse_plan → serialize_plan`` bit-for-bit,
   with a stable digest and structural equality of the parsed plan
   (templates, geometry, integrity layout, quantized model block).
3. **Defenses compose** — ABFT still detects seeded silent data
   corruption when results come from cached plans: a loadgen campaign
   with a bit-flipping device, ``integrity="abft"``, and the plan cache
   on must detect every corruption, deliver zero mismatched results,
   and actually serve warm binds while doing so.

Everything derives from the campaign seed; no wall-clock values enter
the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.apps import all_applications
from repro.config import SystemConfig
from repro.conformance.cases import APP_PARAMS, OP_CASES
from repro.conformance.oracles import _as_array, derive_rng, pipeline_context
from repro.host.platform import Platform
from repro.plan.cache import PlanCache
from repro.plan.compiled import CompiledPlan
from repro.plan.serial import parse_plan, plan_digest, serialize_plan
from repro.runtime.api import OpenCtpu
from repro.runtime.tensorizer import TensorizerOptions
from repro.serve.loadgen import LoadgenSpec, run_loadgen


@dataclass
class PlansReport:
    """Aggregate outcome of one compiled-plan conformance run."""

    ops: List[dict] = field(default_factory=list)
    apps: List[dict] = field(default_factory=list)
    #: Plans that survived serialize → parse → serialize byte-exactly.
    roundtrips: int = 0
    #: Warm-path replays observed across all runs (must be non-zero).
    replays: int = 0
    abft: dict = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "ops_checked": len(self.ops),
            "apps_checked": len(self.apps),
            "roundtrips": self.roundtrips,
            "replays": self.replays,
            "ops": list(self.ops),
            "apps": list(self.apps),
            "abft": dict(self.abft),
            "violations": list(self.violations),
            "ok": self.ok,
        }


def _plan_context(cache: PlanCache) -> OpenCtpu:
    """A pipeline-path runtime sharing *cache* for capture/replay runs."""
    return OpenCtpu(
        Platform(SystemConfig().with_tpus(1)),
        options=TensorizerOptions(vectorized=True),
        plan_cache=cache,
    )


def _settle(ctx: OpenCtpu) -> None:
    if ctx.pending_operations:
        ctx.sync()


def _models_equal(a, b) -> List[str]:
    """Field-level differences between two optional GemmModelBlocks."""
    if a is None and b is None:
        return []
    if (a is None) != (b is None):
        return ["model block presence differs"]
    diffs = []
    if bytes(a.b_digest) != bytes(b.b_digest):
        diffs.append("model digest differs")
    if (a.b_lo, a.b_hi) != (b.b_lo, b.b_hi):
        diffs.append("model range differs")
    if not np.array_equal(np.asarray(a.q_b), np.asarray(b.q_b)):
        diffs.append("quantized model data differs")
    if not np.array_equal(np.asarray(a.col_scales), np.asarray(b.col_scales)):
        diffs.append("model scales differ")
    return diffs


def _plans_equal(a: CompiledPlan, b: CompiledPlan) -> List[str]:
    """Structural differences between two plans (ndarray-safe — a plain
    dataclass ``==`` would hit the ambiguous-truth ndarray comparison)."""
    diffs = []
    for name in ("signature", "kind", "opname", "cpu_seconds", "integrity_mode"):
        if getattr(a, name) != getattr(b, name):
            diffs.append(f"{name} differs")
    if list(a.templates) != list(b.templates):
        diffs.append("instruction templates differ")
    if list(a.integrity) != list(b.integrity):
        diffs.append("integrity layout differs")
    if a.geometry != b.geometry:
        diffs.append("geometry differs")
    diffs.extend(_models_equal(a.model, b.model))
    return diffs


def _check_roundtrip(
    plan: CompiledPlan, where: str, report: PlansReport
) -> None:
    canon = plan.without_runtime_state()
    try:
        blob = serialize_plan(canon)
        parsed = parse_plan(blob)
        again = serialize_plan(parsed)
    except Exception as exc:
        report.violations.append(
            f"{where}: plan round-trip raised {type(exc).__name__}: {exc}"
        )
        return
    if again != blob:
        report.violations.append(
            f"{where}: plan re-serialized differently "
            f"({len(again)} vs {len(blob)} bytes)"
        )
        return
    if plan_digest(again) != plan_digest(blob):
        report.violations.append(f"{where}: plan digest is unstable")
        return
    diffs = _plans_equal(canon, parsed)
    if diffs:
        report.violations.append(
            f"{where}: parsed plan is not structurally equal: "
            + "; ".join(diffs)
        )
        return
    report.roundtrips += 1


def _bytes(value) -> bytes:
    return _as_array(value).tobytes()


def _run_ops(seed: int, report: PlansReport) -> None:
    for case in OP_CASES:
        data = case.build(derive_rng(seed, "plans", case.name))

        base_ctx = pipeline_context()
        baseline = _as_array(case.invoke(base_ctx, data))
        _settle(base_ctx)

        cache = PlanCache()
        cap_ctx = _plan_context(cache)
        captured = _as_array(case.invoke(cap_ctx, data))
        _settle(cap_ctx)

        rep_ctx = _plan_context(cache)
        replayed = _as_array(case.invoke(rep_ctx, data))
        _settle(rep_ctx)

        replays = rep_ctx.tensorizer.stats.plan_replays
        report.replays += replays
        capture_identical = (
            captured.shape == baseline.shape
            and captured.tobytes() == baseline.tobytes()
        )
        replay_identical = (
            replayed.shape == baseline.shape
            and replayed.tobytes() == baseline.tobytes()
        )
        report.ops.append(
            {
                "name": case.name,
                "capture_identical": capture_identical,
                "replay_identical": replay_identical,
                "plans": len(cache),
                "hits": cache.hits,
                "replays": replays,
            }
        )
        if not capture_identical:
            report.violations.append(
                f"ops/{case.name}: capture run differs from plan-free lowering"
            )
        if not replay_identical:
            report.violations.append(
                f"ops/{case.name}: cached replay differs from plan-free lowering"
            )
        if replays == 0:
            report.violations.append(
                f"ops/{case.name}: warm run never replayed a cached plan "
                "(bit-identity is vacuous)"
            )
        for plan in cache.plans():
            _check_roundtrip(plan, f"ops/{case.name}", report)


def _run_apps(seed: int, report: PlansReport) -> None:
    apps = all_applications()
    for name, params in APP_PARAMS.items():
        app = apps[name]
        app_seed = int(
            derive_rng(seed, "plans", "apps", name).integers(0, 2**31)
        )
        inputs = app.generate(seed=app_seed, **params)

        baseline = _bytes(app.run_gptpu(inputs, pipeline_context()).value)

        # Apps like LUD lower a distinct shape per elimination step, so
        # give them headroom: an eviction would only force a re-capture
        # (still correct), but we want the warm run to actually replay.
        cache = PlanCache(max_entries=1024)
        captured = _bytes(app.run_gptpu(inputs, _plan_context(cache)).value)

        rep_ctx = _plan_context(cache)
        replayed = _bytes(app.run_gptpu(inputs, rep_ctx).value)
        replays = rep_ctx.tensorizer.stats.plan_replays
        report.replays += replays

        capture_identical = captured == baseline
        replay_identical = replayed == baseline
        report.apps.append(
            {
                "name": name,
                "params": dict(params),
                "app_seed": app_seed,
                "capture_identical": capture_identical,
                "replay_identical": replay_identical,
                "plans": len(cache),
                "hits": cache.hits,
                "replays": replays,
            }
        )
        if not capture_identical:
            report.violations.append(
                f"apps/{name}: capture run differs from plan-free lowering"
            )
        if not replay_identical:
            report.violations.append(
                f"apps/{name}: cached replay differs from plan-free lowering"
            )
        if replays == 0:
            report.violations.append(
                f"apps/{name}: warm run never replayed a cached plan"
            )
        for plan in cache.plans():
            _check_roundtrip(plan, f"apps/{name}", report)


def _run_abft(seed: int, report: PlansReport) -> None:
    spec = LoadgenSpec(
        tpus=4,
        tenants=4,
        requests_per_tenant=6,
        size=96,
        seed=int(derive_rng(seed, "plans", "abft").integers(0, 2**31)),
        fail_after_instructions=40,
        fail_mode="bitflip",
        integrity="abft",
        plan_cache=True,
    )
    result = run_loadgen(spec)
    integ = result.snapshot["integrity"]
    plan = result.snapshot.get("plan_cache") or {}
    report.abft = {
        "sdc_detected": integ["sdc_detected"],
        "sdc_corrected": integ["sdc_corrected"],
        "mismatches": result.mismatches,
        "plan_binds": plan.get("binds", 0),
        "plan_hit_rate": plan.get("hit_rate", 0.0),
    }
    if integ["sdc_detected"] == 0:
        report.violations.append(
            "abft: corruption injected but zero detections with the plan "
            "cache on"
        )
    if result.mismatches:
        report.violations.append(
            f"abft: {result.mismatches} delivered results differ from solo "
            "lowering (corruption escaped through a cached plan)"
        )
    if plan.get("binds", 0) == 0:
        report.violations.append(
            "abft: the campaign never bound a cached plan (vacuous scenario)"
        )


def run_plans(seed: int) -> PlansReport:
    """Run the full compiled-plan conformance battery."""
    report = PlansReport()
    _run_ops(seed, report)
    _run_apps(seed, report)
    _run_abft(seed, report)
    return report
