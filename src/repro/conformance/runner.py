"""Top-level conformance runner and JSON report builder.

``run_conformance`` composes the four suites:

* ``ops``    — differential three-oracle run of every ``repro.ops``
  entry point (:mod:`repro.conformance.cases`) plus the metamorphic
  battery (:mod:`repro.conformance.metamorphic`);
* ``apps``   — three-oracle run of the seven Table 3 applications at
  conformance scale, gated by the Table 4 envelopes;
* ``format`` — the §3.3 model-binary mutation fuzzer
  (:mod:`repro.conformance.format_fuzz`);
* ``serve``  — the fault-injection campaign
  (:mod:`repro.conformance.campaign`);
* ``integrity`` — the silent-data-corruption campaign over the
  ABFT/vote-defended stack (:mod:`repro.conformance.integrity`);
* ``plans`` — the AOT compiled-plan battery
  (:mod:`repro.conformance.plans`): cached replay bit-identical to
  fresh lowering across the op catalog and all applications, byte-exact
  plan round-trips, ABFT detection through cached plans, plus the
  plan-blob mutation fuzzer;
* ``nn`` — the NN-inference battery (:mod:`repro.conformance.nn`):
  the NN extension ops through the three oracles, LeNet and attention
  end-to-end on an 8-TPU pool, and warm plan-cache replay
  bit-identity;
* ``shard`` — the multi-TPU segmentation battery
  (:mod:`repro.conformance.shard`): sharded-vs-solo bit-identity over
  ragged GEMMs and both NN models, seeded fail-stop/SDC fault
  scenarios with event-log exactly-once proofs, and the
  profiled-split-point shift.

The report is reproducible from the recorded ``seed`` alone: every RNG
stream derives from it (:func:`repro.conformance.oracles.derive_rng`)
and no wall-clock values enter the ops/apps/format payloads.  The serve
suite's *counters* depend on real scheduling interleavings (breaker
cooldowns are wall-clock); its *invariants* — zero lost, exactly-once,
bit-identity — hold for every interleaving and are what the suite gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import all_applications
from repro.conformance.campaign import DEFAULT_SCENARIOS, FaultScenario, run_campaign
from repro.conformance.cases import APP_PARAMS, OP_CASES
from repro.conformance.format_fuzz import run_fuzz, run_plan_fuzz
from repro.conformance.integrity import (
    DEFAULT_INTEGRITY_SCENARIOS,
    IntegrityScenario,
    run_integrity_campaign,
)
from repro.conformance.metamorphic import run_properties
from repro.conformance.nn import run_nn
from repro.conformance.oracles import app_oracles, derive_rng, run_oracles
from repro.conformance.plans import run_plans
from repro.conformance.shard import run_shard
from repro.metrics.errors import bound_for_app, bound_for_op

#: Suites in canonical execution/report order.
SUITES = ("ops", "apps", "format", "serve", "integrity", "plans", "nn", "shard")


@dataclass
class ConformanceReport:
    """Aggregated results of one conformance run."""

    seed: int
    suites: Tuple[str, ...]
    sections: Dict[str, dict] = field(default_factory=dict)
    #: Flat list of "<suite>: <what failed>" strings.
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "suites": list(self.suites),
            **{suite: self.sections[suite] for suite in self.suites},
            "failures": list(self.failures),
            "ok": self.ok,
        }


def parse_suites(spec: str) -> Tuple[str, ...]:
    """Parse a ``--suite`` value like ``ops,format`` into suite names."""
    names = [part.strip() for part in spec.split(",") if part.strip()]
    if not names:
        raise ValueError("no suites requested")
    unknown = [n for n in names if n not in SUITES]
    if unknown:
        raise ValueError(
            f"unknown suite(s) {unknown}; choose from {list(SUITES)}"
        )
    # Canonical order, duplicates collapsed.
    return tuple(suite for suite in SUITES if suite in names)


def _run_ops_suite(seed: int, report: ConformanceReport) -> None:
    cases = []
    for case in OP_CASES:
        data = case.build(derive_rng(seed, "ops", case.name))
        bound = bound_for_op(case.family)
        outcome = run_oracles(
            lambda ctx: case.invoke(ctx, data),
            case.reference(data),
            bound,
        )
        entry = {
            "name": case.name,
            "family": case.family,
            "bit_identical": outcome.bit_identical,
            "instructions": outcome.instructions,
            **outcome.check.as_dict(),
        }
        cases.append(entry)
        if not outcome.bit_identical:
            report.failures.append(
                f"ops: {case.name} int8 paths are not bit-identical"
            )
        for violation in outcome.check.violations():
            report.failures.append(f"ops: {case.name} {violation}")
    properties = run_properties(seed)
    for prop in properties:
        if not prop.ok:
            report.failures.append(f"ops: metamorphic {prop.name} failed")
    report.sections["ops"] = {
        "cases": cases,
        "metamorphic": [prop.as_dict() for prop in properties],
        "ok": not any(f.startswith("ops:") for f in report.failures),
    }


def _run_apps_suite(seed: int, report: ConformanceReport) -> None:
    apps = all_applications()
    entries = []
    for name, params in APP_PARAMS.items():
        app = apps[name]
        app_seed = int(derive_rng(seed, "apps", name).integers(0, 2**31))
        inputs = app.generate(seed=app_seed, **params)
        bound = bound_for_app(name)
        outcome, _cpu_res, pipe_res = app_oracles(app, inputs, bound)
        entry = {
            "name": name,
            "params": dict(params),
            "app_seed": app_seed,
            "bit_identical": outcome.bit_identical,
            "instructions": pipe_res.instructions,
            **outcome.check.as_dict(),
        }
        entries.append(entry)
        if not outcome.bit_identical:
            report.failures.append(
                f"apps: {name} int8 paths are not bit-identical"
            )
        for violation in outcome.check.violations():
            report.failures.append(f"apps: {name} {violation}")
    report.sections["apps"] = {
        "cases": entries,
        "ok": not any(f.startswith("apps:") for f in report.failures),
    }


def _run_format_suite(
    seed: int, report: ConformanceReport, iterations: int
) -> None:
    fuzz = run_fuzz(seed, iterations=iterations)
    for violation in fuzz.violations:
        report.failures.append(f"format: {violation}")
    report.sections["format"] = fuzz.as_dict()


def _run_serve_suite(
    seed: int,
    report: ConformanceReport,
    scenarios: Optional[Tuple[FaultScenario, ...]],
    workers: int = 0,
) -> None:
    results = run_campaign(seed, scenarios, workers=workers)
    for result in results:
        for violation in result.violations:
            report.failures.append(
                f"serve: {result.scenario.name}: {violation}"
            )
    report.sections["serve"] = {
        "scenarios": [result.as_dict() for result in results],
        "ok": not any(f.startswith("serve:") for f in report.failures),
    }


def _run_integrity_suite(
    seed: int,
    report: ConformanceReport,
    scenarios: Optional[Tuple[IntegrityScenario, ...]],
) -> None:
    results = run_integrity_campaign(seed, scenarios)
    for result in results:
        for violation in result.violations:
            report.failures.append(
                f"integrity: {result.scenario.name}: {violation}"
            )
    report.sections["integrity"] = {
        "scenarios": [result.as_dict() for result in results],
        "ok": not any(f.startswith("integrity:") for f in report.failures),
    }


def _run_plans_suite(
    seed: int, report: ConformanceReport, fuzz_iterations: int
) -> None:
    plans = run_plans(seed)
    for violation in plans.violations:
        report.failures.append(f"plans: {violation}")
    fuzz = run_plan_fuzz(seed, iterations=fuzz_iterations)
    for violation in fuzz.violations:
        report.failures.append(f"plans: fuzz: {violation}")
    section = plans.as_dict()
    section["fuzz"] = fuzz.as_dict()
    section["ok"] = not any(f.startswith("plans:") for f in report.failures)
    report.sections["plans"] = section


def _run_nn_suite(seed: int, report: ConformanceReport) -> None:
    nn = run_nn(seed)
    report.failures.extend(nn.violations)
    report.sections["nn"] = nn.as_dict()


def _run_shard_suite(
    seed: int, report: ConformanceReport, workers: int = 0
) -> None:
    shard = run_shard(seed, workers=workers)
    report.failures.extend(shard.violations)
    report.sections["shard"] = shard.as_dict()


def run_conformance(
    suites: Sequence[str] = SUITES,
    seed: int = 0,
    fuzz_iterations: int = 400,
    scenarios: Optional[Tuple[FaultScenario, ...]] = None,
    integrity_scenarios: Optional[Tuple[IntegrityScenario, ...]] = None,
    workers: int = 0,
) -> ConformanceReport:
    """Run the requested suites and return the aggregate report.

    ``workers`` > 0 runs the ``serve`` and ``shard`` suites against the
    multi-process :class:`~repro.mp.MpTpuServer`; the other suites do
    not involve the serving layer and ignore it.
    """
    ordered = parse_suites(",".join(suites)) if suites else SUITES
    report = ConformanceReport(seed=int(seed), suites=ordered)
    if "ops" in ordered:
        _run_ops_suite(report.seed, report)
    if "apps" in ordered:
        _run_apps_suite(report.seed, report)
    if "format" in ordered:
        _run_format_suite(report.seed, report, fuzz_iterations)
    if "serve" in ordered:
        _run_serve_suite(
            report.seed, report, scenarios or DEFAULT_SCENARIOS, workers
        )
    if "integrity" in ordered:
        _run_integrity_suite(
            report.seed, report, integrity_scenarios or DEFAULT_INTEGRITY_SCENARIOS
        )
    if "plans" in ordered:
        _run_plans_suite(report.seed, report, fuzz_iterations)
    if "nn" in ordered:
        _run_nn_suite(report.seed, report)
    if "shard" in ordered:
        _run_shard_suite(report.seed, report, workers)
    return report
