"""Fault-injection campaigns over the serving stack.

Each :class:`FaultScenario` arms one or more :class:`FaultInjector`
plans on a fresh simulated platform, drives a closed-loop multi-tenant
workload through :class:`~repro.serve.server.TpuServer`, and then
asserts the serving contract **from the outside**:

* **zero lost** — every admitted request's future settles; the
  accounting balance ``submitted == rejected + completed + failed +
  timeouts`` holds after a drain;
* **exactly-once** — the dispatcher's campaign hook
  (:attr:`~repro.serve.dispatcher.DevicePool.observer`) records every
  lifecycle event; no serve ID may be delivered twice, and no ID may be
  both delivered and timed-out / given-up on;
* **bit-identity** — every delivered result must equal the solo
  lowering of the same request on a healthy Tensorizer, byte for byte
  (retries and coalescing are pure scheduling transforms).

Scenarios are deterministic in the campaign seed; only wall-clock
dependent *counters* (how many requests raced past a breaker cooldown)
vary run to run — the invariants hold regardless.
"""

from __future__ import annotations

import asyncio
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.conformance.oracles import derive_rng
from repro.edgetpu.isa import Opcode
from repro.errors import DeviceFailure, QueueFull, RequestTimeout
from repro.host.platform import Platform
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.runtime.tensorizer import Tensorizer
from repro.serve.server import ServeConfig, TpuServer


@dataclass(frozen=True)
class FaultPlan:
    """One armed injector: which device dies, when, and how often."""

    device: int
    after_instructions: int = 0
    #: -1 = permanent death; positive = transient, clears after firing.
    failures: int = -1


@dataclass(frozen=True)
class FaultScenario:
    """One campaign scenario: topology, workload, and fault plans."""

    name: str
    description: str
    tpus: int = 4
    tenants: int = 4
    requests_per_tenant: int = 4
    #: Square GEMM size per request (m = k = n = size).
    size: int = 96
    faults: Tuple[FaultPlan, ...] = ()
    deadline_seconds: Optional[float] = None
    max_retries: int = 3
    #: The scenario is vacuous unless the injectors actually fired.
    expect_device_failures: bool = True
    #: Scenario must surface RequestTimeout rejections.
    expect_timeouts: bool = False
    #: Scenario must surface DeviceFailure rejections (retries exhausted).
    expect_failed: bool = False


#: The default campaign: >= 3 distinct failure modes (ISSUE acceptance).
DEFAULT_SCENARIOS: Tuple[FaultScenario, ...] = (
    FaultScenario(
        name="device-death",
        description="one of four devices dies permanently mid-run; "
        "work re-routes, nothing is lost",
        faults=(FaultPlan(device=0, after_instructions=40),),
    ),
    FaultScenario(
        name="dead-on-arrival",
        description="a device is dead before the first group lands; the "
        "breaker quarantines it after threshold failures",
        tpus=3,
        faults=(FaultPlan(device=1, after_instructions=0),),
    ),
    FaultScenario(
        name="retry-storm",
        description="two devices throw transient faults that clear; "
        "every request survives via bounded retries",
        faults=(
            FaultPlan(device=0, after_instructions=20, failures=2),
            FaultPlan(device=2, after_instructions=60, failures=3),
        ),
    ),
    FaultScenario(
        name="double-death",
        description="half the pool dies permanently; the survivors "
        "absorb the full load",
        faults=(
            FaultPlan(device=1, after_instructions=30),
            FaultPlan(device=3, after_instructions=90),
        ),
    ),
    FaultScenario(
        name="single-tpu-permadeath",
        description="the only device dies; retries exhaust and every "
        "in-flight request fails loudly — none hang, none are lost",
        tpus=1,
        tenants=2,
        requests_per_tenant=3,
        faults=(FaultPlan(device=0, after_instructions=25),),
        max_retries=2,
        expect_failed=True,
    ),
    FaultScenario(
        name="deadline-storm",
        description="zero-second deadlines expire every request before "
        "dispatch; all surface RequestTimeout, none are lost",
        tenants=3,
        requests_per_tenant=3,
        faults=(),
        deadline_seconds=0.0,
        expect_device_failures=False,
        expect_timeouts=True,
    ),
)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run, with its invariant verdicts."""

    scenario: FaultScenario
    snapshot: dict
    #: Observer lifecycle-event counts by type.
    events: Dict[str, int] = field(default_factory=dict)
    #: Delivered results that differed from the solo-lowering reference.
    mismatches: int = 0
    #: Human-readable invariant violations (must stay empty).
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        out = self.snapshot["outcomes"]
        return {
            "name": self.scenario.name,
            "description": self.scenario.description,
            "outcomes": dict(out),
            "retries": self.snapshot["retries"],
            "device_failures": self.snapshot["device_failures"],
            "events": dict(sorted(self.events.items())),
            "mismatches": self.mismatches,
            "violations": list(self.violations),
            "ok": self.ok,
        }


async def _campaign_client(
    server: TpuServer,
    tenant: str,
    requests: List[OperationRequest],
    results: dict,
    deadline_seconds: Optional[float],
) -> None:
    for i, request in enumerate(requests):
        try:
            results[(tenant, i)] = await server.submit(
                request, deadline_seconds=deadline_seconds
            )
        except QueueFull:
            # The queue is sized for the full offered load; reaching
            # here breaks the scenario's accounting assumptions.
            results[("__queue_full__", tenant, i)] = True
        except (DeviceFailure, RequestTimeout):
            continue  # surfaced failure — counted server-side


def _make_server(platform: Platform, config: ServeConfig, workers: int):
    """In-process server, or the multi-process one when *workers* > 0.

    The scenario code is identical either way — that is the point: the
    campaign proves the serving contract holds across process
    boundaries without loosening a single invariant.
    """
    if workers:
        from repro.mp import MpTpuServer

        return MpTpuServer(
            platform, config, workers=min(workers, platform.num_tpus)
        )
    return TpuServer(platform, config)


async def _run_scenario(
    scenario: FaultScenario, seed: int, workers: int = 0
) -> ScenarioResult:
    rng = derive_rng(seed, "campaign", scenario.name)
    platform = Platform.with_tpus(scenario.tpus)
    for plan in scenario.faults:
        platform.devices[plan.device % scenario.tpus].inject_fault(
            after_instructions=plan.after_instructions,
            failures=plan.failures,
            reason=f"campaign:{scenario.name}",
        )

    total = scenario.tenants * scenario.requests_per_tenant
    config = ServeConfig(
        max_queue_depth=max(total * 2, 16),
        max_retries=scenario.max_retries,
        breaker_cooldown=0.01,
        time_scale=0.0,
    )
    b = rng.integers(-64, 64, size=(scenario.size, scenario.size)).astype(
        np.float32
    )
    per_tenant: Dict[str, List[OperationRequest]] = {}
    for t in range(scenario.tenants):
        tenant = f"tenant{t}"
        per_tenant[tenant] = [
            OperationRequest(
                task_id=0,
                opcode=Opcode.CONV2D,
                inputs=(
                    rng.integers(
                        -64, 64, size=(scenario.size, scenario.size)
                    ).astype(np.float32),
                    b,
                ),
                quant=QuantMode.SCALE,
                attrs={"gemm": True},
                tenant=tenant,
            )
            for _ in range(scenario.requests_per_tenant)
        ]

    event_log: List[Tuple[str, int, int]] = []
    results: dict = {}
    async with _make_server(platform, config, workers) as server:
        server.pool.observer = lambda event, serve_id, device: event_log.append(
            (event, serve_id, device)
        )
        await asyncio.gather(
            *(
                _campaign_client(
                    server, tenant, reqs, results, scenario.deadline_seconds
                )
                for tenant, reqs in per_tenant.items()
            )
        )
        await server.drain()
        snapshot = server.snapshot()

    result = ScenarioResult(
        scenario=scenario,
        snapshot=snapshot,
        events=dict(Counter(event for event, _, _ in event_log)),
    )
    _check_invariants(result, event_log, per_tenant, results, platform)
    return result


def _check_invariants(
    result: ScenarioResult,
    event_log: List[Tuple[str, int, int]],
    per_tenant: Dict[str, List[OperationRequest]],
    results: dict,
    platform: Platform,
) -> None:
    scenario = result.scenario
    out = result.snapshot["outcomes"]
    violations = result.violations

    # Zero lost + accounting balance.
    if out["lost"] != 0:
        violations.append(f"lost != 0: {out['lost']}")
    balance = out["rejected"] + out["completed"] + out["failed"] + out["timeouts"]
    if out["submitted"] != balance:
        violations.append(
            f"accounting imbalance: submitted={out['submitted']} "
            f"!= rejected+completed+failed+timeouts={balance}"
        )
    if any(key[0] == "__queue_full__" for key in results):
        violations.append("admission queue overflowed a sized-to-fit campaign")

    # Exactly-once, proven from the observer event stream.
    by_id: Dict[int, Counter] = defaultdict(Counter)
    for event, serve_id, _ in event_log:
        by_id[serve_id][event] += 1
    for serve_id, counts in sorted(by_id.items()):
        if counts["deliver"] > 1:
            violations.append(
                f"serve_id {serve_id} delivered {counts['deliver']} times"
            )
        if counts["deliver"] and counts["give-up"]:
            violations.append(
                f"serve_id {serve_id} both delivered and gave up"
            )
        if counts["deliver"] and counts["timeout"]:
            violations.append(
                f"serve_id {serve_id} both delivered and timed out"
            )
    delivers = sum(c["deliver"] for c in by_id.values())
    delivered_results = sum(
        1 for key in results if isinstance(key[1], int)
    )
    if delivered_results != out["completed"]:
        violations.append(
            f"client-side deliveries ({delivered_results}) != server "
            f"completed ({out['completed']})"
        )
    if delivers != out["completed"]:
        violations.append(
            f"deliver events ({delivers}) != completed ({out['completed']})"
        )

    # Bit-identity of every delivered result vs solo lowering.
    reference = Tensorizer(platform.config.edgetpu, cpu=platform.cpu)
    for tenant, reqs in per_tenant.items():
        for i, request in enumerate(reqs):
            got = results.get((tenant, i))
            if got is None:
                continue
            want = reference.lower(request).result
            if not np.array_equal(got, want):
                result.mismatches += 1
    if result.mismatches:
        violations.append(
            f"{result.mismatches} delivered results differ from solo lowering"
        )

    # The scenario must actually exercise what it claims to.
    if scenario.expect_device_failures and not result.snapshot["device_failures"]:
        violations.append("no injected fault fired (vacuous scenario)")
    if scenario.expect_timeouts and not out["timeouts"]:
        violations.append("expected RequestTimeout rejections, saw none")
    if scenario.expect_failed and not out["failed"]:
        violations.append("expected DeviceFailure rejections, saw none")


def run_campaign(
    seed: int,
    scenarios: Optional[Tuple[FaultScenario, ...]] = None,
    workers: int = 0,
) -> List[ScenarioResult]:
    """Run every scenario to completion, each on a private event loop.

    ``workers`` > 0 drives the same scenarios, unchanged, through the
    multi-process :class:`~repro.mp.MpTpuServer` (clamped per scenario
    to its TPU count).
    """
    return [
        asyncio.run(_run_scenario(scenario, seed, workers))
        for scenario in (scenarios or DEFAULT_SCENARIOS)
    ]
