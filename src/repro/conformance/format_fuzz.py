"""Seeded mutation fuzzer for the §3.3 model binary format.

Property under test: for any mutation of a well-formed blob, the parser
must either **reject with a typed error** (:class:`ModelFormatError`,
with :class:`ModelSizeMismatchError` specifically for header-size
disagreements) or **accept and round-trip byte-exactly** — re-serializing
the parsed model reproduces the mutated blob bit for bit.  Anything
else means the parser silently repaired, truncated, or misread bytes.

All randomness derives from the campaign seed (no wall-clock entropy);
the seed in the JSON report reproduces every mutation exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.conformance.oracles import derive_rng
from repro.edgetpu.model_format import (
    HEADER_SIZE,
    MAGIC,
    parse_model,
    serialize_model,
)
from repro.edgetpu.quantize import QuantParams
from repro.errors import ModelFormatError, ModelSizeMismatchError

#: Metadata layout past the data section: rows (u32), cols (u32), f32 scale.
_META_SIZE = 12

#: Mutation operator names, in selection order.
MUTATIONS = (
    "identity",
    "magic",
    "version",
    "size-field",
    "truncate",
    "extend",
    "scale",
    "dims",
    "data-byte",
    "reserved-header",
)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing campaign."""

    iterations: int = 0
    rejected: int = 0
    #: Accepted blobs that re-serialized byte-exactly.
    roundtripped: int = 0
    #: Size-field disagreements that raised the *typed* subclass.
    typed_size_errors: int = 0
    by_mutation: Dict[str, int] = field(default_factory=dict)
    #: Human-readable property violations (must stay empty).
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "rejected": self.rejected,
            "roundtripped": self.roundtripped,
            "typed_size_errors": self.typed_size_errors,
            "by_mutation": dict(sorted(self.by_mutation.items())),
            "violations": list(self.violations),
            "ok": self.ok,
        }


def _fresh_blob(rng: np.random.Generator) -> bytes:
    rows = int(rng.integers(1, 24))
    cols = int(rng.integers(1, 24))
    data = rng.integers(-128, 128, size=(rows, cols)).astype(np.int8)
    scale = float(2.0 ** rng.integers(-6, 7))
    return serialize_model(data, QuantParams(scale))


def _mutate(blob: bytes, mutation: str, rng: np.random.Generator) -> bytes:
    buf = bytearray(blob)
    if mutation == "identity":
        return bytes(buf)
    if mutation == "magic":
        pos = int(rng.integers(0, len(MAGIC)))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    if mutation == "version":
        bad = int(rng.integers(2, 2**31))
        struct.pack_into("<I", buf, len(MAGIC), bad)
        return bytes(buf)
    if mutation == "size-field":
        (size,) = struct.unpack_from("<I", buf, HEADER_SIZE - 4)
        delta = 0
        while delta == 0:
            delta = int(rng.integers(-min(size, 64), 65))
        struct.pack_into("<I", buf, HEADER_SIZE - 4, size + delta)
        return bytes(buf)
    if mutation == "truncate":
        cut = int(rng.integers(1, min(len(buf), 32) + 1))
        return bytes(buf[:-cut])
    if mutation == "extend":
        extra = rng.integers(0, 256, size=int(rng.integers(1, 32))).astype(np.uint8)
        return bytes(buf) + extra.tobytes()
    if mutation == "scale":
        bad = rng.choice(np.array([0.0, -1.0, np.nan, np.inf], dtype=np.float32))
        struct.pack_into("<f", buf, len(buf) - 4, float(bad))
        return bytes(buf)
    if mutation == "dims":
        rows = int(rng.integers(0, 64))
        cols = int(rng.integers(0, 64))
        struct.pack_into("<II", buf, len(buf) - _META_SIZE, rows, cols)
        return bytes(buf)
    if mutation == "data-byte":
        if len(buf) == HEADER_SIZE + _META_SIZE + 0:
            return bytes(buf)
        pos = HEADER_SIZE + int(rng.integers(0, len(buf) - HEADER_SIZE - _META_SIZE))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    if mutation == "reserved-header":
        pos = int(rng.integers(len(MAGIC) + 4, HEADER_SIZE - 4))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    raise ValueError(f"unknown mutation {mutation!r}")  # pragma: no cover


def run_fuzz(seed: int, iterations: int = 400) -> FuzzReport:
    """Run *iterations* seeded mutations against the parser."""
    report = FuzzReport()
    rng = derive_rng(seed, "format-fuzz")
    for i in range(iterations):
        mutation = MUTATIONS[int(rng.integers(0, len(MUTATIONS)))]
        blob = _mutate(_fresh_blob(rng), mutation, rng)
        report.iterations += 1
        report.by_mutation[mutation] = report.by_mutation.get(mutation, 0) + 1
        try:
            parsed = parse_model(blob)
        except ModelSizeMismatchError:
            report.rejected += 1
            report.typed_size_errors += 1
            continue
        except ModelFormatError:
            if mutation == "size-field":
                # A size-field disagreement must surface as the typed
                # subclass, not a generic parse failure.
                report.violations.append(
                    f"iter {i}: size-field mutation raised an untyped "
                    "ModelFormatError"
                )
            report.rejected += 1
            continue
        except Exception as exc:  # non-ModelFormatError escape = bug
            report.violations.append(
                f"iter {i}: {mutation} mutation escaped the typed hierarchy: "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        # Accepted: the parse must round-trip to the same bytes.
        back = serialize_model(parsed.data, parsed.params)
        if back != blob:
            report.violations.append(
                f"iter {i}: {mutation} mutation was accepted but "
                f"re-serialized differently ({len(back)} vs {len(blob)} bytes)"
            )
            continue
        report.roundtripped += 1
    return report
