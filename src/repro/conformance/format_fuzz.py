"""Seeded mutation fuzzer for the §3.3 model binary format.

Property under test: for any mutation of a well-formed blob, the parser
must either **reject with a typed error** (:class:`ModelFormatError`,
with :class:`ModelSizeMismatchError` specifically for header-size
disagreements) or **accept and round-trip byte-exactly** — re-serializing
the parsed model reproduces the mutated blob bit for bit.  Anything
else means the parser silently repaired, truncated, or misread bytes.

All randomness derives from the campaign seed (no wall-clock entropy);
the seed in the JSON report reproduces every mutation exactly.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.conformance.oracles import derive_rng
from repro.edgetpu.model_format import (
    HEADER_SIZE,
    MAGIC,
    parse_model,
    serialize_model,
)
from repro.edgetpu.quantize import QuantParams
from repro.errors import ModelFormatError, ModelSizeMismatchError
from repro.plan.compiled import (
    KIND_GEMM,
    KIND_GENERIC,
    CompiledPlan,
    GemmGeometry,
    GemmModelBlock,
    InstrTemplate,
    IntegrityTemplate,
)
from repro.plan.serial import (
    PLAN_HEADER_SIZE,
    PLAN_MAGIC,
    parse_plan,
    serialize_plan,
)

#: Metadata layout past the data section: rows (u32), cols (u32), f32 scale.
_META_SIZE = 12

#: Mutation operator names, in selection order.
MUTATIONS = (
    "identity",
    "magic",
    "version",
    "size-field",
    "truncate",
    "extend",
    "scale",
    "dims",
    "data-byte",
    "reserved-header",
)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing campaign."""

    iterations: int = 0
    rejected: int = 0
    #: Accepted blobs that re-serialized byte-exactly.
    roundtripped: int = 0
    #: Size-field disagreements that raised the *typed* subclass.
    typed_size_errors: int = 0
    by_mutation: Dict[str, int] = field(default_factory=dict)
    #: Human-readable property violations (must stay empty).
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "rejected": self.rejected,
            "roundtripped": self.roundtripped,
            "typed_size_errors": self.typed_size_errors,
            "by_mutation": dict(sorted(self.by_mutation.items())),
            "violations": list(self.violations),
            "ok": self.ok,
        }


def _fresh_blob(rng: np.random.Generator) -> bytes:
    rows = int(rng.integers(1, 24))
    cols = int(rng.integers(1, 24))
    data = rng.integers(-128, 128, size=(rows, cols)).astype(np.int8)
    scale = float(2.0 ** rng.integers(-6, 7))
    return serialize_model(data, QuantParams(scale))


def _mutate(blob: bytes, mutation: str, rng: np.random.Generator) -> bytes:
    buf = bytearray(blob)
    if mutation == "identity":
        return bytes(buf)
    if mutation == "magic":
        pos = int(rng.integers(0, len(MAGIC)))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    if mutation == "version":
        bad = int(rng.integers(2, 2**31))
        struct.pack_into("<I", buf, len(MAGIC), bad)
        return bytes(buf)
    if mutation == "size-field":
        (size,) = struct.unpack_from("<I", buf, HEADER_SIZE - 4)
        delta = 0
        while delta == 0:
            delta = int(rng.integers(-min(size, 64), 65))
        struct.pack_into("<I", buf, HEADER_SIZE - 4, size + delta)
        return bytes(buf)
    if mutation == "truncate":
        cut = int(rng.integers(1, min(len(buf), 32) + 1))
        return bytes(buf[:-cut])
    if mutation == "extend":
        extra = rng.integers(0, 256, size=int(rng.integers(1, 32))).astype(np.uint8)
        return bytes(buf) + extra.tobytes()
    if mutation == "scale":
        bad = rng.choice(np.array([0.0, -1.0, np.nan, np.inf], dtype=np.float32))
        struct.pack_into("<f", buf, len(buf) - 4, float(bad))
        return bytes(buf)
    if mutation == "dims":
        rows = int(rng.integers(0, 64))
        cols = int(rng.integers(0, 64))
        struct.pack_into("<II", buf, len(buf) - _META_SIZE, rows, cols)
        return bytes(buf)
    if mutation == "data-byte":
        if len(buf) == HEADER_SIZE + _META_SIZE + 0:
            return bytes(buf)
        pos = HEADER_SIZE + int(rng.integers(0, len(buf) - HEADER_SIZE - _META_SIZE))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    if mutation == "reserved-header":
        pos = int(rng.integers(len(MAGIC) + 4, HEADER_SIZE - 4))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    raise ValueError(f"unknown mutation {mutation!r}")  # pragma: no cover


def run_fuzz(seed: int, iterations: int = 400) -> FuzzReport:
    """Run *iterations* seeded mutations against the parser."""
    report = FuzzReport()
    rng = derive_rng(seed, "format-fuzz")
    for i in range(iterations):
        mutation = MUTATIONS[int(rng.integers(0, len(MUTATIONS)))]
        blob = _mutate(_fresh_blob(rng), mutation, rng)
        report.iterations += 1
        report.by_mutation[mutation] = report.by_mutation.get(mutation, 0) + 1
        try:
            parsed = parse_model(blob)
        except ModelSizeMismatchError:
            report.rejected += 1
            report.typed_size_errors += 1
            continue
        except ModelFormatError:
            if mutation == "size-field":
                # A size-field disagreement must surface as the typed
                # subclass, not a generic parse failure.
                report.violations.append(
                    f"iter {i}: size-field mutation raised an untyped "
                    "ModelFormatError"
                )
            report.rejected += 1
            continue
        except Exception as exc:  # non-ModelFormatError escape = bug
            report.violations.append(
                f"iter {i}: {mutation} mutation escaped the typed hierarchy: "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        # Accepted: the parse must round-trip to the same bytes.
        back = serialize_model(parsed.data, parsed.params)
        if back != blob:
            report.violations.append(
                f"iter {i}: {mutation} mutation was accepted but "
                f"re-serialized differently ({len(back)} vs {len(blob)} bytes)"
            )
            continue
        report.roundtripped += 1
    return report


# ----------------------------------------------------------------------
# compiled-plan blobs (the §3.3 layout extended — repro.plan.serial)
# ----------------------------------------------------------------------

#: Plan-blob mutation operators.  The plan body is a variable-length
#: record stream (no fixed metadata tail), so the model fuzzer's
#: ``scale``/``dims`` operators become a single ``body-byte`` operator
#: that strikes anywhere in the stream: string lengths, record counts,
#: kind/flag codes, f64 costs, scales, and int8 model data.
PLAN_MUTATIONS = (
    "identity",
    "magic",
    "version",
    "size-field",
    "truncate",
    "extend",
    "body-byte",
    "reserved-header",
    "opname",
)


def _rand_template(rng: np.random.Generator, i: int) -> InstrTemplate:
    # Canonical wire opnames only (the parser rejects everything else,
    # including the conv2D_nn macro — see the opname mutation operator).
    return InstrTemplate(
        opname=str(rng.choice(["conv2D", "add", "mul", "tanh", "pool", "softmax"])),
        label=f"fuzz:t{i}",
        group_key="task{task}:g" + str(i),
        cache_key="{src}:c" + str(i),
        model_cache_key="{msrc}:m" + str(i),
        data_bytes=int(rng.integers(0, 1 << 20)),
        model_bytes=int(rng.integers(0, 1 << 20)),
        out_bytes=int(rng.integers(0, 1 << 20)),
        count=int(rng.integers(1, 8)),
        model_build_seconds=float(rng.integers(0, 1 << 20)) / (1 << 16),
        exec_seconds=float(rng.integers(0, 1 << 20)) / (1 << 16),
    )


def _fresh_plan_blob(rng: np.random.Generator) -> bytes:
    """Serialize a random well-formed plan (generic or gemm_conv2d)."""
    templates = [_rand_template(rng, i) for i in range(int(rng.integers(1, 5)))]
    if rng.integers(0, 2) == 0:
        plan = CompiledPlan(
            signature=f"plan-v1|fuzz|{int(rng.integers(0, 1 << 30))}",
            kind=KIND_GENERIC,
            opname=str(rng.choice(["add", "pool", "softmax"])),
            cpu_seconds=float(rng.integers(0, 1 << 20)) / (1 << 16),
            templates=templates,
        )
        return serialize_plan(plan)

    n = int(rng.integers(1, 65))
    s = math.isqrt(n - 1) + 1  # ceil(sqrt(n))
    m = int(rng.integers(1, 33))
    k = int(rng.integers(1, 33))
    geometry = GemmGeometry(
        m=m,
        n=n,
        k=k,
        s=s,
        rows_per_chunk=int(rng.integers(1, m + 1)),
        batch=int(rng.integers(1, k + 1)),
    )
    integrity_mode = str(rng.choice(["off", "abft", "vote"]))
    checks = []
    if integrity_mode != "off":
        for i, _ in enumerate(geometry.row_starts):
            r0 = int(rng.integers(0, m))
            c0 = int(rng.integers(0, k))
            checks.append(
                IntegrityTemplate(
                    label=f"fuzz:chk{i}",
                    rows=(r0, r0 + int(rng.integers(1, 4))),
                    cols=(c0, c0 + int(rng.integers(1, 4))),
                )
            )
    model = None
    if rng.integers(0, 2):
        scales = 2.0 ** rng.integers(-6, 7, size=len(geometry.col_starts))
        model = GemmModelBlock(
            q_b=rng.integers(-127, 128, size=(n, k)).astype(np.float32),
            col_scales=scales.astype(np.float64),
            b_lo=-float(rng.integers(1, 64)),
            b_hi=float(rng.integers(1, 64)),
            b_digest=rng.integers(0, 256, size=32).astype(np.uint8).tobytes(),
        )
    plan = CompiledPlan(
        signature=f"plan-v1|fuzz|{int(rng.integers(0, 1 << 30))}",
        kind=KIND_GEMM,
        opname="conv2D",
        cpu_seconds=float(rng.integers(0, 1 << 20)) / (1 << 16),
        templates=templates,
        integrity_mode=integrity_mode,
        integrity=checks,
        geometry=geometry,
        model=model,
    )
    return serialize_plan(plan)


def _mutate_plan(blob: bytes, mutation: str, rng: np.random.Generator) -> bytes:
    buf = bytearray(blob)
    if mutation == "identity":
        return bytes(buf)
    if mutation == "magic":
        pos = int(rng.integers(0, len(PLAN_MAGIC)))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    if mutation == "version":
        bad = int(rng.integers(2, 2**31))
        struct.pack_into("<I", buf, len(PLAN_MAGIC), bad)
        return bytes(buf)
    if mutation == "size-field":
        (size,) = struct.unpack_from("<I", buf, PLAN_HEADER_SIZE - 4)
        delta = 0
        while delta == 0:
            delta = int(rng.integers(-min(size, 64), 65))
        struct.pack_into("<I", buf, PLAN_HEADER_SIZE - 4, size + delta)
        return bytes(buf)
    if mutation == "truncate":
        cut = int(rng.integers(1, min(len(buf), 32) + 1))
        return bytes(buf[:-cut])
    if mutation == "extend":
        extra = rng.integers(0, 256, size=int(rng.integers(1, 32))).astype(np.uint8)
        return bytes(buf) + extra.tobytes()
    if mutation == "body-byte":
        pos = PLAN_HEADER_SIZE + int(rng.integers(0, len(buf) - PLAN_HEADER_SIZE))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    if mutation == "reserved-header":
        pos = int(rng.integers(len(PLAN_MAGIC) + 4, PLAN_HEADER_SIZE - 4))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    if mutation == "opname":
        # Flip the case of one letter of the plan-level opname.  Wire
        # opnames are canonical, case-sensitive registry entries (pool,
        # softmax, conv2D, ... — and never the conv2D_nn macro), so any
        # case-flipped rendering must be rejected with a typed error.
        (sig_len,) = struct.unpack_from("<H", buf, PLAN_HEADER_SIZE)
        off = PLAN_HEADER_SIZE + 2 + sig_len + 1  # past signature + kind byte
        name_len = buf[off]
        for pos in range(off + 1, off + 1 + name_len):
            if 65 <= buf[pos] <= 90 or 97 <= buf[pos] <= 122:
                buf[pos] ^= 0x20
                break
        return bytes(buf)
    raise ValueError(f"unknown plan mutation {mutation!r}")  # pragma: no cover


def run_plan_fuzz(seed: int, iterations: int = 400) -> FuzzReport:
    """Fuzz the compiled-plan parser with the same accept/reject contract.

    Every mutated blob must be rejected with a typed error
    (:class:`~repro.errors.PlanFormatError` is a
    :class:`ModelFormatError`, with :class:`ModelSizeMismatchError`
    specifically for header-size disagreements) or accepted and
    re-serialized byte-exactly.
    """
    report = FuzzReport()
    rng = derive_rng(seed, "plan-fuzz")
    for i in range(iterations):
        mutation = PLAN_MUTATIONS[int(rng.integers(0, len(PLAN_MUTATIONS)))]
        blob = _mutate_plan(_fresh_plan_blob(rng), mutation, rng)
        report.iterations += 1
        report.by_mutation[mutation] = report.by_mutation.get(mutation, 0) + 1
        try:
            parsed = parse_plan(blob)
        except ModelSizeMismatchError:
            report.rejected += 1
            report.typed_size_errors += 1
            continue
        except ModelFormatError:
            if mutation == "size-field":
                report.violations.append(
                    f"iter {i}: plan size-field mutation raised an untyped "
                    "ModelFormatError"
                )
            report.rejected += 1
            continue
        except Exception as exc:  # non-ModelFormatError escape = bug
            report.violations.append(
                f"iter {i}: plan {mutation} mutation escaped the typed "
                f"hierarchy: {type(exc).__name__}: {exc}"
            )
            continue
        back = serialize_plan(parsed)
        if back != blob:
            report.violations.append(
                f"iter {i}: plan {mutation} mutation was accepted but "
                f"re-serialized differently ({len(back)} vs {len(blob)} bytes)"
            )
            continue
        report.roundtripped += 1
    return report
