"""Exception hierarchy for the GPTPU reproduction.

Every error raised by the library derives from :class:`GPTPUError` so that
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by argument validation still use the
built-in types where that is the idiomatic choice).
"""

from __future__ import annotations


class GPTPUError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(GPTPUError):
    """Raised when the discrete-event engine is driven incorrectly."""


class DeadlockError(SimulationError):
    """Raised when the engine runs out of events while processes wait."""


class DeviceError(GPTPUError):
    """Raised for Edge TPU device-level failures."""


class OutOfDeviceMemoryError(DeviceError):
    """Raised when an allocation exceeds the 8 MB on-chip memory."""


class UnsupportedInstructionError(DeviceError):
    """Raised when an opcode outside the Edge TPU ISA is executed."""


class ModelFormatError(GPTPUError):
    """Raised when an Edge TPU model binary fails to parse or validate."""


class QuantizationError(GPTPUError):
    """Raised when data cannot be quantized (e.g. non-finite inputs)."""


class RuntimeAPIError(GPTPUError):
    """Raised for misuse of the OpenCtpu-style runtime API."""


class TaskError(RuntimeAPIError):
    """Raised when a task reference is invalid or a task failed."""


class SchedulerError(GPTPUError):
    """Raised when the scheduler is configured or driven incorrectly."""


class TensorizerError(GPTPUError):
    """Raised when an operation cannot be lowered to TPU instructions."""


class BenchmarkError(GPTPUError):
    """Raised by the benchmark harness for invalid experiment configs."""
