"""Exception hierarchy for the GPTPU reproduction.

Every error raised by the library derives from :class:`GPTPUError` so that
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by argument validation still use the
built-in types where that is the idiomatic choice).
"""

from __future__ import annotations


class GPTPUError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(GPTPUError):
    """Raised when the discrete-event engine is driven incorrectly."""


class DeadlockError(SimulationError):
    """Raised when the engine runs out of events while processes wait."""


class DeviceError(GPTPUError):
    """Raised for Edge TPU device-level failures."""


class DeviceFailure(DeviceError):
    """Raised when a device fails while holding a dispatch group.

    The serving layer's fault-injection hooks raise this to model a TPU
    dropping off the bus mid-stream; the dispatcher catches it, opens
    the device's circuit breaker, and requeues the group elsewhere.
    """

    def __init__(self, message: str, device: str = "") -> None:
        super().__init__(message)
        #: Name of the device that failed (e.g. ``"tpu3"``), when known.
        self.device = device


class SilentDataCorruption(DeviceFailure):
    """An integrity check caught a device returning wrong int8 bytes.

    Unlike a plain :class:`DeviceFailure` (fail-stop: the device raised
    instead of answering), silent corruption means the device *answered*
    — with data whose ABFT checksums (or a witness device's copy)
    disagree beyond the requantization error bound.  The dispatcher
    treats it as retriable like a failure, but feeds the device's
    quarantine score instead of its circuit breaker.
    """

    def __init__(self, message: str, device: str = "", detections: int = 0) -> None:
        super().__init__(message, device=device)
        #: Number of tiles that failed verification in this incident.
        self.detections = detections


class OutOfDeviceMemoryError(DeviceError):
    """Raised when an allocation exceeds the 8 MB on-chip memory."""


class UnsupportedInstructionError(DeviceError):
    """Raised when an opcode outside the Edge TPU ISA is executed."""


class ModelFormatError(GPTPUError):
    """Raised when an Edge TPU model binary fails to parse or validate."""


class ModelSizeMismatchError(ModelFormatError):
    """The header's data-section size field disagrees with the blob.

    A parser that trusted the shorter of the two lengths would silently
    truncate (or over-read) the weight matrix; this typed error carries
    both numbers so callers and fuzzers can assert the exact complaint.
    """

    def __init__(self, message: str, declared: int, actual: int) -> None:
        super().__init__(message)
        #: Data-section size the header's last-4-bytes field declares.
        self.declared = declared
        #: Data-section bytes actually present between header and metadata.
        self.actual = actual


class PlanFormatError(ModelFormatError):
    """Raised when a serialized compiled plan fails to parse or validate.

    Compiled plans (:mod:`repro.plan`) extend the §3.3 model-binary
    layout with a versioned plan header, instruction-group records, and
    an integrity block; the same reject-typed-or-roundtrip-byte-exact
    contract applies, so the error slots into the :class:`ModelFormatError`
    hierarchy (size-field disagreements still raise the dedicated
    :class:`ModelSizeMismatchError`).
    """


class QuantizationError(GPTPUError):
    """Raised when data cannot be quantized (e.g. non-finite inputs)."""


class RuntimeAPIError(GPTPUError):
    """Raised for misuse of the OpenCtpu-style runtime API."""


class TaskError(RuntimeAPIError):
    """Raised when a task reference is invalid or a task failed."""


class SchedulerError(GPTPUError):
    """Raised when the scheduler is configured or driven incorrectly."""


class TensorizerError(GPTPUError):
    """Raised when an operation cannot be lowered to TPU instructions."""


class BenchmarkError(GPTPUError):
    """Raised by the benchmark harness for invalid experiment configs."""


class ServingError(GPTPUError):
    """Base class for multi-tenant serving-layer errors (:mod:`repro.serve`)."""


class QueueFull(ServingError):
    """Admission fast-reject: the bounded OPQ (or a tenant's share) is full.

    Backpressure signal — the client should retry later or shed load;
    nothing was enqueued.
    """


class LoadShed(QueueFull):
    """Admission shed this request by SLO policy, not by capacity.

    Raised instead of the plain :class:`QueueFull` when the overload
    controller is engaged and the request's tenant tier is inside the
    current shed set (lowest tiers first; see :mod:`repro.serve.slo`).
    Subclassing :class:`QueueFull` keeps existing back-off clients
    working, while outcome accounting can tell deliberate shedding
    apart from a full queue.
    """

    def __init__(self, message: str, tier: str = "") -> None:
        super().__init__(message)
        #: SLO tier the shed request belonged to (e.g. ``"bronze"``).
        self.tier = tier


class RequestTimeout(ServingError):
    """A request's deadline expired before its results were delivered."""
