"""Speedup and aggregate helpers for benchmark reporting."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """Classic speedup: baseline time over accelerated time."""
    if baseline_seconds <= 0 or accelerated_seconds <= 0:
        raise ValueError(
            f"speedup needs positive times, got {baseline_seconds} / {accelerated_seconds}"
        )
    return baseline_seconds / accelerated_seconds


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper reports both mean and geomean)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of an empty sequence")
    if (arr <= 0).any():
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class SpeedupRow:
    """One benchmark row: name, baseline time, accelerated time."""

    name: str
    baseline_seconds: float
    accelerated_seconds: float

    @property
    def speedup(self) -> float:
        """Baseline over accelerated."""
        return speedup(self.baseline_seconds, self.accelerated_seconds)


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of *samples* (q in [0, 100])."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class LatencySummary:
    """Request-latency distribution for serving reports (p50/p99 etc.)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float
    #: p99.9 — the sustained-load SLO gate quantile.  Defaults to 0.0
    #: so pre-existing direct constructions keep working.
    p999: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        """Summarize a non-empty set of latency samples (seconds)."""
        arr = np.asarray(list(samples), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("LatencySummary needs at least one sample")
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p90=float(np.percentile(arr, 90)),
            p99=float(np.percentile(arr, 99)),
            p999=float(np.percentile(arr, 99.9)),
            max=float(arr.max()),
        )

    def as_dict(self) -> dict:
        """JSON-friendly form (used by ``BENCH_serving.json``)."""
        return {
            "count": self.count,
            "mean_seconds": self.mean,
            "p50_seconds": self.p50,
            "p90_seconds": self.p90,
            "p99_seconds": self.p99,
            "p999_seconds": self.p999,
            "max_seconds": self.max,
        }


class ReservoirSample:
    """Bounded uniform sample of an unbounded stream (Algorithm R).

    Below ``capacity`` the retained values are *exactly* the stream, so
    summaries match the old unbounded-list behaviour bit for bit.  Past
    capacity each new value replaces a random retained one with
    probability ``capacity / count`` — every stream element ends up
    retained with equal probability, which preserves percentile fidelity
    while memory stays O(capacity).  The exact running count, total, and
    max survive regardless, so means and maxima never degrade.

    Deterministic for a given ``seed`` (serving metrics must be
    reproducible run to run).
    """

    __slots__ = ("capacity", "count", "total", "max_value", "_values", "_rng")

    def __init__(self, capacity: int = 8192, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.max_value = float("-inf")
        self._values: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Admit one stream element."""
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._values[slot] = value

    append = add  # drop-in for the unbounded lists this replaces

    @property
    def mean(self) -> float:
        """Exact stream mean (not the reservoir's)."""
        return self.total / self.count if self.count else 0.0

    def values(self) -> List[float]:
        """The retained sample (the full stream below capacity)."""
        return list(self._values)

    def export_state(self) -> dict:
        """Mergeable state: exact aggregates plus the retained sample."""
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max_value,
            "values": list(self._values),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another reservoir's :meth:`export_state` into this one.

        Count, total, and max stay exact (they are running aggregates,
        not sampled).  The retained values concatenate when the union
        fits ``capacity``; otherwise each side contributes a slice
        proportional to its exact stream count, subsampled with this
        reservoir's own RNG so merges stay deterministic.
        """
        other_values = [float(v) for v in state["values"]]
        other_count = int(state["count"])
        if other_count == 0:
            return
        self.total += float(state["total"])
        if float(state["max"]) > self.max_value:
            self.max_value = float(state["max"])
        combined_len = len(self._values) + len(other_values)
        if combined_len <= self.capacity:
            self._values.extend(other_values)
        else:
            total_count = self.count + other_count
            take_other = min(
                len(other_values),
                max(1, round(self.capacity * other_count / total_count)),
            )
            take_self = min(len(self._values), self.capacity - take_other)
            take_other = min(len(other_values), self.capacity - take_self)
            mine = (
                self._values
                if take_self == len(self._values)
                else self._rng.sample(self._values, take_self)
            )
            theirs = (
                other_values
                if take_other == len(other_values)
                else self._rng.sample(other_values, take_other)
            )
            self._values = list(mine) + list(theirs)
        self.count += other_count

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self):
        return iter(self._values)


def summarize(rows: Sequence[SpeedupRow]) -> dict:
    """Mean/geomean speedups over a set of rows."""
    speeds = [r.speedup for r in rows]
    return {
        "mean": float(np.mean(speeds)),
        "geomean": geomean(speeds),
        "min": min(speeds),
        "max": max(speeds),
    }
