"""Speedup and aggregate helpers for benchmark reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """Classic speedup: baseline time over accelerated time."""
    if baseline_seconds <= 0 or accelerated_seconds <= 0:
        raise ValueError(
            f"speedup needs positive times, got {baseline_seconds} / {accelerated_seconds}"
        )
    return baseline_seconds / accelerated_seconds


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper reports both mean and geomean)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of an empty sequence")
    if (arr <= 0).any():
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class SpeedupRow:
    """One benchmark row: name, baseline time, accelerated time."""

    name: str
    baseline_seconds: float
    accelerated_seconds: float

    @property
    def speedup(self) -> float:
        """Baseline over accelerated."""
        return speedup(self.baseline_seconds, self.accelerated_seconds)


def summarize(rows: Sequence[SpeedupRow]) -> dict:
    """Mean/geomean speedups over a set of rows."""
    speeds = [r.speedup for r in rows]
    return {
        "mean": float(np.mean(speeds)),
        "geomean": geomean(speeds),
        "min": min(speeds),
        "max": max(speeds),
    }
