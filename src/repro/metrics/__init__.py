"""Accuracy and performance metrics used by the paper's evaluation."""

from repro.metrics.errors import mape_percent, max_abs_error, rmse_percent
from repro.metrics.summary import SpeedupRow, geomean, speedup

__all__ = [
    "SpeedupRow",
    "geomean",
    "mape_percent",
    "max_abs_error",
    "rmse_percent",
    "speedup",
]
