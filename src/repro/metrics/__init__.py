"""Accuracy and performance metrics used by the paper's evaluation,
plus the latency-distribution summaries of the serving layer."""

from repro.metrics.errors import mape_percent, max_abs_error, rmse_percent
from repro.metrics.summary import (
    LatencySummary,
    SpeedupRow,
    geomean,
    percentile,
    speedup,
)

__all__ = [
    "LatencySummary",
    "SpeedupRow",
    "geomean",
    "mape_percent",
    "max_abs_error",
    "percentile",
    "rmse_percent",
    "speedup",
]
