"""Accuracy and performance metrics used by the paper's evaluation,
plus the latency-distribution summaries of the serving layer."""

from repro.metrics.errors import (
    OP_BOUNDS,
    TABLE4_BOUNDS,
    BoundCheck,
    ErrorBound,
    bound_for_app,
    bound_for_op,
    mape_percent,
    max_abs_error,
    max_rel_error_percent,
    rmse_percent,
)
from repro.metrics.summary import (
    LatencySummary,
    ReservoirSample,
    SpeedupRow,
    geomean,
    percentile,
    speedup,
)

__all__ = [
    "OP_BOUNDS",
    "TABLE4_BOUNDS",
    "BoundCheck",
    "ErrorBound",
    "LatencySummary",
    "ReservoirSample",
    "SpeedupRow",
    "bound_for_app",
    "bound_for_op",
    "geomean",
    "mape_percent",
    "max_abs_error",
    "max_rel_error_percent",
    "percentile",
    "rmse_percent",
    "speedup",
]
