"""Error metrics matching the paper's Table 4 / Table 5 reporting.

The paper reports MAPE (mean absolute percentage error) and RMSE, both
in percent, between GPTPU results and exact CPU results.  RMSE values
like "0.98 %" only make sense normalized, so we use range-normalized
RMSE (RMS error divided by the reference's max magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


def _pair(result: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(result, dtype=np.float64)
    b = np.asarray(reference, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: result {a.shape} vs reference {b.shape}")
    if a.size == 0:
        raise ValueError("cannot compute error metrics on empty arrays")
    return a, b


def mape_percent(
    result: np.ndarray,
    reference: np.ndarray,
    eps: float = 1e-12,
    floor: float = 1e-3,
) -> float:
    """Mean absolute percentage error, in percent.

    Relative error is undefined at zero and explodes on entries far
    below the data's own magnitude, so entries with
    ``|reference| < max(eps, floor · max|reference|)`` are excluded.
    If every entry is excluded the result falls back to range-normalized
    mean error.
    """
    a, b = _pair(result, reference)
    cutoff = max(eps, floor * float(np.abs(b).max()))
    mask = np.abs(b) > cutoff
    if not mask.any():
        scale = max(np.abs(b).max(), eps)
        return float(np.mean(np.abs(a - b)) / scale * 100.0)
    return float(np.mean(np.abs(a[mask] - b[mask]) / np.abs(b[mask])) * 100.0)


def rmse_percent(result: np.ndarray, reference: np.ndarray, eps: float = 1e-12) -> float:
    """Range-normalized root-mean-square error, in percent."""
    a, b = _pair(result, reference)
    scale = max(float(np.abs(b).max()), eps)
    return float(np.sqrt(np.mean((a - b) ** 2)) / scale * 100.0)


def max_abs_error(result: np.ndarray, reference: np.ndarray) -> float:
    """Largest absolute elementwise deviation."""
    a, b = _pair(result, reference)
    return float(np.abs(a - b).max())


def max_rel_error_percent(
    result: np.ndarray, reference: np.ndarray, eps: float = 1e-12
) -> float:
    """Largest range-normalized elementwise deviation, in percent.

    Normalizes by the reference's max magnitude (like
    :func:`rmse_percent`) so the worst single entry is comparable to the
    paper's percent-scale reporting without blowing up at zeros.
    """
    a, b = _pair(result, reference)
    scale = max(float(np.abs(b).max()), eps)
    return float(np.abs(a - b).max() / scale * 100.0)


# ---------------------------------------------------------------------------
# Codified error envelopes (paper Tables 4 and 5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorBound:
    """Maximum admissible error of one workload against its float oracle.

    ``mape_percent`` / ``rmse_percent`` / ``max_rel_percent`` are ceilings
    in percent; ``source`` names the paper table (and note, if any) the
    ceiling is calibrated from.  Bounds carry headroom over the measured
    reproduction values (EXPERIMENTS.md Tables 4/5) so seed-to-seed
    variation does not flake the gate, while staying tight enough that a
    scaling/lowering regression (the Table 5 FBGEMM overflow cliff is
    RMSE ≈ 0.65–0.97 %) trips it.
    """

    mape_percent: float
    rmse_percent: float
    max_rel_percent: float
    source: str = ""

    def check(self, result: np.ndarray, reference: np.ndarray) -> "BoundCheck":
        """Measure *result* against *reference* and gate on this bound."""
        return BoundCheck(
            bound=self,
            mape_percent=mape_percent(result, reference),
            rmse_percent=rmse_percent(result, reference),
            max_rel_percent=max_rel_error_percent(result, reference),
        )


@dataclass(frozen=True)
class BoundCheck:
    """Measured error metrics plus the verdict against an :class:`ErrorBound`."""

    bound: ErrorBound
    mape_percent: float
    rmse_percent: float
    max_rel_percent: float

    @property
    def ok(self) -> bool:
        """True when every measured metric sits within its ceiling."""
        return (
            self.mape_percent <= self.bound.mape_percent
            and self.rmse_percent <= self.bound.rmse_percent
            and self.max_rel_percent <= self.bound.max_rel_percent
        )

    def violations(self) -> list:
        """Human-readable list of exceeded metrics (empty when ok)."""
        out = []
        for name, got, cap in (
            ("MAPE", self.mape_percent, self.bound.mape_percent),
            ("RMSE", self.rmse_percent, self.bound.rmse_percent),
            ("max-rel", self.max_rel_percent, self.bound.max_rel_percent),
        ):
            if got > cap:
                out.append(f"{name} {got:.4f} % > bound {cap:.4f} %")
        return out

    def as_dict(self) -> dict:
        """JSON-friendly record for conformance reports."""
        return {
            "mape_percent": self.mape_percent,
            "rmse_percent": self.rmse_percent,
            "max_rel_percent": self.max_rel_percent,
            "bound": {
                "mape_percent": self.bound.mape_percent,
                "rmse_percent": self.bound.rmse_percent,
                "max_rel_percent": self.bound.max_rel_percent,
                "source": self.bound.source,
            },
            "ok": self.ok,
        }


#: Table 4 envelopes per application, against the exact CPU baseline.
#: Paper: MAPE < 1 % (avg 0.33 %), RMSE <= 0.98 %, range-invariant.
#: Reproduction deltas (documented in EXPERIMENTS.md): Backprop's MAPE
#: is a metric artifact of near-zero pre-activations (entrywise relative
#: error has a long tail even at 0.77 % range-normalized RMSE), and
#: Black-Scholes prices near strike parity behave the same way — their
#: MAPE ceilings are therefore artifact-scaled while the RMSE ceilings
#: stay sub-percent, which is the claim that matters.
TABLE4_BOUNDS: Dict[str, ErrorBound] = {
    "backprop": ErrorBound(20.0, 1.5, 8.0, "Table 4 (MAPE artifact: near-zero outputs)"),
    "blackscholes": ErrorBound(8.0, 1.5, 8.0, "Table 4 (MAPE artifact: at-par options)"),
    "gaussian": ErrorBound(1.0, 0.75, 4.0, "Table 4"),
    "gemm": ErrorBound(1.5, 1.5, 8.0, "Table 4"),
    "hotspot3d": ErrorBound(1.0, 0.75, 4.0, "Table 4"),
    "lud": ErrorBound(1.0, 0.75, 4.0, "Table 4"),
    "pagerank": ErrorBound(1.5, 1.0, 6.0, "Table 4"),
}

#: Table 5-calibrated envelopes per operator family, against float64
#: NumPy references over the conformance suite's default datasets.
#: RMSE and max-rel are range-normalized and are the paper's
#: range-invariant accuracy claim: a single int8 quantization floor is
#: step/sqrt(12) ≈ 0.23 % RMSE, multiplicative ops pay two input
#: quantizations plus one output requantize, and the Table 5 FBGEMM
#: regression cliff (0.65–0.97 % RMSE) sits safely above every ceiling.
#: MAPE is entrywise-relative: over the suite's zero-mean datasets the
#: entries just above the mask floor contribute a heavy tail (an entry
#: at 1 % of range with a 0.4 %-of-range quantization error is 40 %
#: relative error), so the MAPE ceilings are calibrated against the
#: measured tail (seeds 0–7) with ~2x headroom rather than against the
#: paper's app-level sub-percent figures.
OP_BOUNDS: Dict[str, ErrorBound] = {
    "gemm": ErrorBound(12.0, 0.6, 4.0, "Table 5 (GPTPU column)"),
    "matvec": ErrorBound(25.0, 0.8, 4.0, "Table 5 (GPTPU column; small-output MAPE tail)"),
    "pairwise": ErrorBound(10.0, 0.8, 4.0, "Table 4 (quantization floor)"),
    "mul": ErrorBound(25.0, 1.0, 5.0, "Table 4 (two input quantizations)"),
    "unary": ErrorBound(8.0, 1.2, 5.0, "Table 4 (quantization floor)"),
    "reduction": ErrorBound(1.0, 1.0, 1.0, "Table 4 (exact int sums/max)"),
    "movement": ErrorBound(8.0, 0.5, 1.0, "§3.3 (single requantization)"),
    "scan": ErrorBound(8.0, 0.8, 4.0, "§10 extension (GEMM-backed)"),
    "precise": ErrorBound(10.0, 0.6, 3.0, "§10 (k-split error reduction)"),
    "conv2d": ErrorBound(12.0, 1.0, 4.0, "Table 1 (stencil conv)"),
    # NN extension families, calibrated like the rest: measured over the
    # suite's default datasets for seeds 0-7, ~2x headroom on the worst.
    # conv2d_nn pays two input quantizations plus a per-output-channel
    # requantize (measured RMSE <= 0.29 %); avg pooling re-quantizes its
    # window sums (RMSE <= 0.84 %); softmax's 1/127 output quantum makes
    # entrywise MAPE heavy-tailed on small probabilities (<= 27 %) while
    # the range-normalized metrics stay sub-percent.
    "conv2d_nn": ErrorBound(10.0, 0.6, 3.0, "§10 NN extension (im2col GEMM)"),
    "pool": ErrorBound(16.0, 1.6, 4.5, "§10 NN extension (window max/avg)"),
    "softmax": ErrorBound(55.0, 0.8, 4.0, "§10 NN extension (exp LUT)"),
}


def bound_for_op(family: str) -> ErrorBound:
    """Look up the codified envelope for an operator family."""
    try:
        return OP_BOUNDS[family]
    except KeyError:
        raise KeyError(
            f"no codified error bound for op family {family!r}; "
            f"known: {sorted(OP_BOUNDS)}"
        ) from None


def bound_for_app(name: str, override: Optional[ErrorBound] = None) -> ErrorBound:
    """Look up the codified Table 4 envelope for an application."""
    if override is not None:
        return override
    try:
        return TABLE4_BOUNDS[name]
    except KeyError:
        raise KeyError(
            f"no codified Table 4 bound for app {name!r}; known: {sorted(TABLE4_BOUNDS)}"
        ) from None
