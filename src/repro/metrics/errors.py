"""Error metrics matching the paper's Table 4 / Table 5 reporting.

The paper reports MAPE (mean absolute percentage error) and RMSE, both
in percent, between GPTPU results and exact CPU results.  RMSE values
like "0.98 %" only make sense normalized, so we use range-normalized
RMSE (RMS error divided by the reference's max magnitude).
"""

from __future__ import annotations

import numpy as np


def _pair(result: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(result, dtype=np.float64)
    b = np.asarray(reference, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: result {a.shape} vs reference {b.shape}")
    if a.size == 0:
        raise ValueError("cannot compute error metrics on empty arrays")
    return a, b


def mape_percent(
    result: np.ndarray,
    reference: np.ndarray,
    eps: float = 1e-12,
    floor: float = 1e-3,
) -> float:
    """Mean absolute percentage error, in percent.

    Relative error is undefined at zero and explodes on entries far
    below the data's own magnitude, so entries with
    ``|reference| < max(eps, floor · max|reference|)`` are excluded.
    If every entry is excluded the result falls back to range-normalized
    mean error.
    """
    a, b = _pair(result, reference)
    cutoff = max(eps, floor * float(np.abs(b).max()))
    mask = np.abs(b) > cutoff
    if not mask.any():
        scale = max(np.abs(b).max(), eps)
        return float(np.mean(np.abs(a - b)) / scale * 100.0)
    return float(np.mean(np.abs(a[mask] - b[mask]) / np.abs(b[mask])) * 100.0)


def rmse_percent(result: np.ndarray, reference: np.ndarray, eps: float = 1e-12) -> float:
    """Range-normalized root-mean-square error, in percent."""
    a, b = _pair(result, reference)
    scale = max(float(np.abs(b).max()), eps)
    return float(np.sqrt(np.mean((a - b) ** 2)) / scale * 100.0)


def max_abs_error(result: np.ndarray, reference: np.ndarray) -> float:
    """Largest absolute elementwise deviation."""
    a, b = _pair(result, reference)
    return float(np.abs(a - b).max())
