"""Bit-identical reassembly of row-partitioned results.

Sharding splits one GEMM's dispatch groups — each covering a contiguous
row chunk of the output — across devices, so delivery must put the rows
back together.  :class:`MergeBuffer` makes that step *provable* rather
than vacuous: the output starts NaN-poisoned, every segment write is
checked for overlap, and :meth:`finalize` refuses to deliver while any
row is uncovered.  A dropped or double-delivered segment therefore
surfaces as a loud :class:`MergeError` instead of silently delivering
the (already host-computed) result.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServingError


class MergeError(ServingError):
    """A sharded result could not be reassembled (gap or overlap)."""


class MergeBuffer:
    """Row-wise reassembly buffer for one sharded 2-D result."""

    def __init__(self, template: np.ndarray) -> None:
        template = np.asarray(template)
        if template.ndim != 2:
            raise MergeError(
                f"row merge needs a 2-D result, got shape {template.shape}"
            )
        if not np.issubdtype(template.dtype, np.floating):
            raise MergeError(
                f"row merge needs a float result for NaN poisoning, "
                f"got dtype {template.dtype}"
            )
        self._out = np.full(template.shape, np.nan, dtype=template.dtype)
        self._covered = np.zeros(template.shape[0], dtype=bool)
        #: Segment writes applied so far.
        self.writes = 0

    @property
    def rows(self) -> int:
        return self._out.shape[0]

    @property
    def complete(self) -> bool:
        """True once every output row has been written exactly once."""
        return bool(self._covered.all())

    def write(self, row_start: int, row_stop: int, values: np.ndarray) -> None:
        """Install one segment's rows ``[row_start, row_stop)``."""
        if not 0 <= row_start < row_stop <= self.rows:
            raise MergeError(
                f"segment rows [{row_start}, {row_stop}) outside a "
                f"{self.rows}-row result"
            )
        values = np.asarray(values)
        if values.shape != self._out[row_start:row_stop].shape:
            raise MergeError(
                f"segment shape {values.shape} does not match rows "
                f"[{row_start}, {row_stop}) of {self._out.shape}"
            )
        if self._covered[row_start:row_stop].any():
            raise MergeError(
                f"rows [{row_start}, {row_stop}) written twice"
            )
        self._out[row_start:row_stop] = values
        self._covered[row_start:row_stop] = True
        self.writes += 1

    def finalize(self) -> np.ndarray:
        """Return the reassembled result; raise on any coverage gap."""
        if not self.complete:
            missing = np.flatnonzero(~self._covered)
            raise MergeError(
                f"{missing.size} of {self.rows} result rows never "
                f"arrived (first gap at row {int(missing[0])})"
            )
        return self._out
