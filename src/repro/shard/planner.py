"""The segmentation planner: dispatch groups → per-device segments.

One lowered operation arrives as an ordered list of dispatch groups
(for the §7.1.2 conv2D GEMM, one group per output row chunk).  The
planner prices each group with :class:`~repro.shard.cost.ShardCostModel`
(profiled per-device rates when available, static lowering estimates
otherwise), partitions the sequence into contiguous per-device segments
with :func:`~repro.shard.partition.partition_heterogeneous`, and places
segments so sibling segments spread across PCIe cards — concurrent
transfers then ride distinct upstream links instead of serializing on a
shared lane.  Candidate placements are compared by estimated makespan,
which includes the shared-link contention floor.

For row-chunked GEMMs the plan also carries each group's output row
span (parsed from the scheduler's ``...rowsN`` group keys), which the
serving layer uses to drive the bit-identical merge step.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.host.energy import EnergyModel
from repro.host.platform import Platform
from repro.runtime.scheduler import DispatchGroup
from repro.shard.cost import ShardCostModel
from repro.shard.partition import partition_heterogeneous
from repro.shard.profile import ShardProfile

_ROWS_KEY = re.compile(r":rows(\d+)$")


@dataclass(frozen=True)
class ShardSegment:
    """One contiguous run of dispatch groups pinned to one device."""

    device: int
    #: Half-open range into the operation's dispatch-group list.
    start: int
    stop: int
    #: Output row span ``[row_start, row_stop)`` or None when the
    #: operation is not row-partitioned.
    rows: Optional[Tuple[int, int]]
    #: Estimated segment cost (seconds) under the planning profile.
    est_seconds: float
    instructions: int

    @property
    def group_count(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """A full placement of one operation's dispatch groups."""

    segments: Tuple[ShardSegment, ...]
    #: Per-group output row spans (parallel to the group list), or None.
    group_rows: Optional[Tuple[Tuple[int, int], ...]]
    #: Estimated makespan including shared-link contention floors.
    makespan: float
    #: True when at least one segment cost came from measured rates.
    profiled: bool
    #: Estimated active joules of this placement (0.0 when the planner
    #: has no energy model).
    energy_joules: float = 0.0
    #: True when the energy-aware selection traded latency headroom for
    #: a cheaper-energy candidate (it differs from the min-makespan one).
    energy_preferred: bool = False

    @property
    def devices(self) -> Tuple[int, ...]:
        return tuple(seg.device for seg in self.segments)

    @property
    def mergeable(self) -> bool:
        """True when the plan covers a row-partitioned 2-D result."""
        return self.group_rows is not None

    def describe(self) -> List[List[int]]:
        """Compact span payload: ``[device, start, stop]`` per segment."""
        return [[seg.device, seg.start, seg.stop] for seg in self.segments]


def parse_group_rows(
    groups: Sequence[DispatchGroup], result_rows: Optional[int]
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Row span per group from ``...rowsN`` keys, or None.

    Returns spans only when every group carries a row key, the starts
    are strictly increasing from 0, and the spans exactly tile
    ``[0, result_rows)`` — anything else means the operation is not a
    plain row-chunked GEMM and must not be merged row-wise.
    """
    if result_rows is None or result_rows <= 0 or not groups:
        return None
    starts: List[int] = []
    for group in groups:
        match = _ROWS_KEY.search(group.key)
        if match is None:
            return None
        starts.append(int(match.group(1)))
    if starts[0] != 0 or any(b <= a for a, b in zip(starts, starts[1:])):
        return None
    if starts[-1] >= result_rows:
        return None
    stops = starts[1:] + [result_rows]
    return tuple(zip(starts, stops))


class ShardPlanner:
    """Plan per-device segments for one operation's dispatch groups."""

    def __init__(
        self,
        platform: Platform,
        *,
        profile: Optional[ShardProfile] = None,
        min_groups: int = 2,
        energy_aware: bool = False,
    ) -> None:
        if min_groups < 2:
            raise ValueError(f"min_groups must be >= 2, got {min_groups}")
        self.platform = platform
        self.profile = profile
        self.min_groups = min_groups
        self.cost = ShardCostModel(platform.topology, profile=profile)
        #: §8.1 energy model priced into placement when energy-aware:
        #: within a request's deadline slack, a narrower (fewer active
        #: devices, fewer transfers) candidate may beat the fastest one.
        self.energy_model = EnergyModel(platform.config) if energy_aware else None
        #: Upstream (first) link name per device — its card attachment.
        self._card_of = [path[0] for path in platform.topology.paths]

    # -- placement orders ----------------------------------------------

    def _candidate_orders(self, devices: Sequence[int]) -> List[List[int]]:
        """Device orders to evaluate: card-interleaved (segments spread
        across upstream links) and plain index order."""
        by_card: dict = {}
        for d in devices:
            by_card.setdefault(self._card_of[d], []).append(d)
        lanes = [sorted(members) for _, members in sorted(by_card.items())]
        interleaved: List[int] = []
        depth = max(len(lane) for lane in lanes)
        for level in range(depth):
            for lane in lanes:
                if level < len(lane):
                    interleaved.append(lane[level])
        sequential = sorted(devices)
        orders = [interleaved]
        if sequential != interleaved:
            orders.append(sequential)
        return orders

    # -- planning -------------------------------------------------------

    def _evaluate(
        self,
        order: Sequence[int],
        weights: Sequence[float],
        groups: Sequence[DispatchGroup],
    ) -> Tuple[float, float, List[Tuple[int, Tuple[int, int]]]]:
        """(makespan, active joules, placement) for one device order."""
        speeds = (
            self.profile.speeds(order)
            if self.profile is not None
            else [1.0] * len(order)
        )
        ranges = partition_heterogeneous(weights, speeds)
        placed = [
            (device, rng)
            for device, rng in zip(order, ranges)
            if rng[1] > rng[0]
        ]
        makespan = self.cost.makespan(
            (device, groups[rng[0]:rng[1]]) for device, rng in placed
        )
        energy = 0.0
        if self.energy_model is not None:
            energy = self.cost.placement_energy_joules(
                ((device, groups[rng[0]:rng[1]]) for device, rng in placed),
                lambda d: self.energy_model.active_power_watts(f"tpu{d}"),
            )
        return makespan, energy, placed

    def plan(
        self,
        groups: Sequence[DispatchGroup],
        *,
        result_rows: Optional[int] = None,
        devices: Optional[Sequence[int]] = None,
        max_seconds: Optional[float] = None,
    ) -> Optional[ShardPlan]:
        """Place *groups* across *devices*; None when sharding is moot
        (too few groups, fewer than two devices, or a single segment
        would win anyway).

        ``max_seconds`` is the latency budget the caller can afford
        (typically a fraction of the request's remaining deadline
        slack).  When the planner is energy-aware, every candidate whose
        estimated makespan fits the budget competes on *active joules*
        instead of speed — including narrower prefix placements that
        keep fewer TPUs busy — so headroom is converted into energy
        savings; with no budget (or no energy model) selection stays
        minimum-makespan, exactly the pre-energy behaviour.
        """
        if devices is None:
            devices = list(range(self.platform.num_tpus))
        devices = [d for d in devices if 0 <= d < self.platform.num_tpus]
        if len(groups) < self.min_groups or len(devices) < 2:
            return None
        weights = [
            self.cost.exec_seconds(group)
            + self.cost.transfer_seconds(devices[0], self.cost.group_bytes(group))
            for group in groups
        ]
        profiled = self.profile is not None and self.profile.profiled
        orders = self._candidate_orders(devices)
        evaluated = [self._evaluate(order, weights, groups) for order in orders]
        best = min(evaluated, key=lambda c: c[0])
        chosen = best
        energy_preferred = False
        if self.energy_model is not None and max_seconds is not None:
            # Narrower placements: prefixes of the interleaved order use
            # fewer devices (fewer active draws, fewer transfers) at a
            # higher makespan — exactly the latency-for-energy trade.
            base = orders[0]
            for k in sorted({1, len(base) // 2}):
                if 0 < k < len(base):
                    evaluated.append(self._evaluate(base[:k], weights, groups))
            feasible = [c for c in evaluated if c[0] <= max_seconds]
            if feasible:
                pick = min(feasible, key=lambda c: (c[1], len(c[2]), c[0]))
                if pick is not best:
                    energy_preferred = True
                chosen = pick
        makespan, energy, placed = chosen
        if len(placed) < 2 and not energy_preferred:
            return None  # one device would get everything: not a shard
        group_rows = parse_group_rows(groups, result_rows)
        segments = []
        for device, (start, stop) in placed:
            seg_groups = groups[start:stop]
            segments.append(
                ShardSegment(
                    device=device,
                    start=start,
                    stop=stop,
                    rows=(
                        (group_rows[start][0], group_rows[stop - 1][1])
                        if group_rows is not None
                        else None
                    ),
                    est_seconds=self.cost.segment_seconds(seg_groups, device),
                    instructions=sum(g.instruction_count for g in seg_groups),
                )
            )
        return ShardPlan(
            segments=tuple(segments),
            group_rows=group_rows,
            makespan=makespan,
            profiled=profiled,
            energy_joules=energy,
            energy_preferred=energy_preferred,
        )
