"""Per-device execution profiles feeding the segmentation planner.

"Improving inference time in multi-TPU systems with profiled model
segmentation" (arXiv 2503.01025) picks split points from *measured*
per-phase execution profiles rather than static cost estimates.  Here
the measurement source is the PR 4 telemetry layer: every successful
dispatch lands an ``exec_group`` span on the device's track carrying
the group's instruction count and modeled service seconds, and the
serving pool feeds the same observation straight into the profile.  A
:class:`ShardProfile` keeps a per-device EWMA of seconds per
instruction; the planner converts those into relative speeds, falling
back to "all devices equal" while a device is unobserved.
"""

from __future__ import annotations

import re
from statistics import median
from typing import Dict, List, Optional

_TRACK_INDEX = re.compile(r"(\d+)$")

#: Span names that carry a usable (instructions, seconds) observation.
PROFILE_SPAN_NAMES = ("exec_group", "segment_exec")


class ShardProfile:
    """Exponentially-weighted per-device seconds-per-instruction."""

    def __init__(self, num_devices: int, alpha: float = 0.25) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.num_devices = num_devices
        self.alpha = alpha
        self._spi: List[Optional[float]] = [None] * num_devices
        #: Lifetime accepted observations (any device).
        self.observations = 0

    # -- feeding --------------------------------------------------------

    def observe(self, device: int, instructions: int, seconds: float) -> None:
        """Record one executed group: *instructions* took *seconds*."""
        if not 0 <= device < self.num_devices:
            return
        if instructions <= 0 or seconds <= 0:
            return  # degenerate groups carry no rate information
        spi = seconds / instructions
        prev = self._spi[device]
        self._spi[device] = spi if prev is None else (
            self.alpha * spi + (1.0 - self.alpha) * prev
        )
        self.observations += 1

    @classmethod
    def from_tracer(cls, tracer, num_devices: int, alpha: float = 0.25) -> "ShardProfile":
        """Build a profile from a tracer's finished device spans.

        Reads ``exec_group`` / ``segment_exec`` spans whose track names
        end in the device index (``tpu3``) and whose args carry
        ``instructions`` and ``service_seconds`` — exactly what the
        serving pool records on successful dispatch.
        """
        profile = cls(num_devices, alpha=alpha)
        for span in tracer.spans:
            if span.name not in PROFILE_SPAN_NAMES:
                continue
            match = _TRACK_INDEX.search(span.track)
            if match is None:
                continue
            instructions = span.args.get("instructions")
            seconds = span.args.get("service_seconds")
            if instructions is None or seconds is None:
                continue
            profile.observe(int(match.group(1)), int(instructions), float(seconds))
        return profile

    # -- reading --------------------------------------------------------

    @property
    def profiled(self) -> bool:
        """True once at least one device has a measured rate."""
        return any(spi is not None for spi in self._spi)

    def seconds_per_instruction(self, device: int) -> Optional[float]:
        """Measured EWMA rate for *device*, or None if unobserved."""
        if not 0 <= device < self.num_devices:
            raise IndexError(f"no device {device} in a {self.num_devices}-device profile")
        return self._spi[device]

    def speed(self, device: int) -> float:
        """Relative throughput of *device* (1.0 = pool median).

        Unobserved devices report 1.0, so a cold profile degenerates to
        the homogeneous static heuristic.
        """
        spi = self.seconds_per_instruction(device)
        known = [s for s in self._spi if s is not None]
        if spi is None or not known:
            return 1.0
        baseline = median(known)
        if baseline <= 0 or spi <= 0:
            return 1.0
        return baseline / spi

    def speeds(self, devices) -> List[float]:
        """Relative speeds for an ordered device list."""
        return [self.speed(d) for d in devices]

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly profile state."""
        return {
            "observations": self.observations,
            "profiled": self.profiled,
            "seconds_per_instruction": {
                f"tpu{i}": spi for i, spi in enumerate(self._spi) if spi is not None
            },
        }
