"""Interconnect-aware multi-TPU segmentation of large operations.

A single large GEMM lowers into dozens of dispatch groups (one per row
chunk, §7.1.2); without sharding the serving pool routes each group
greedily to the least-loaded device, which balances load but ignores
where the bytes travel.  This package plans the placement up front:

* :mod:`repro.shard.partition` — pure contiguous-partition solvers (the
  hypothesis-tested core);
* :mod:`repro.shard.profile` — per-device seconds-per-instruction
  profile fed by telemetry spans / pool observations (arXiv 2503.01025
  profiled segmentation), with a static fallback when empty;
* :mod:`repro.shard.cost` — group/segment cost model combining modeled
  device time with the 6 ms/MB interconnect transfer occupancy and
  shared-lane contention from :mod:`repro.interconnect.topology`;
* :mod:`repro.shard.planner` — the segmentation planner mapping a
  request's dispatch groups onto per-device contiguous segments;
* :mod:`repro.shard.merge` — the bit-identical reassembly buffer for
  row-partitioned GEMM results.
"""

from repro.shard.merge import MergeBuffer, MergeError
from repro.shard.partition import (
    partition_bounded,
    partition_heterogeneous,
    partition_weighted,
)
from repro.shard.planner import ShardPlan, ShardPlanner, ShardSegment
from repro.shard.profile import ShardProfile
from repro.shard.cost import ShardCostModel

__all__ = [
    "MergeBuffer",
    "MergeError",
    "ShardCostModel",
    "ShardPlan",
    "ShardPlanner",
    "ShardProfile",
    "ShardSegment",
    "partition_bounded",
    "partition_heterogeneous",
    "partition_weighted",
]
