"""Segment cost model: modeled device time + interconnect occupancy.

The planner needs to compare placements *before* any group executes, so
this model prices a dispatch group from what the lowering already knows
(per-instruction modeled execution time, payload bytes) plus what the
topology knows (per-link bandwidth/latency along the device's path, and
which links several devices share).  When a :class:`ShardProfile` has
measured a device, its seconds-per-instruction replaces the static
execution estimate — the arXiv 2503.01025 profiled-segmentation step.

Makespan estimation deliberately mirrors the DMA engine's
store-and-forward contention: a link shared by several planned segments
serializes their transfers, so the estimate is the max of per-device
finish times and per-shared-link total occupancy.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.interconnect.topology import Topology
from repro.runtime.scheduler import DispatchGroup
from repro.shard.profile import ShardProfile


class ShardCostModel:
    """Price dispatch groups and placements on one topology."""

    def __init__(
        self, topology: Topology, profile: Optional[ShardProfile] = None
    ) -> None:
        self.topology = topology
        self.profile = profile
        self._paths = [
            topology.path_links(i) for i in range(topology.num_tpus)
        ]
        self._path_names = list(topology.paths)
        self._shared = set(topology.shared_link_names())

    # -- per-group ------------------------------------------------------

    @staticmethod
    def group_bytes(group: DispatchGroup) -> int:
        """Bytes one device moves for *group*: each resident chunk and
        model blob once (the §6.1 locality rule keeps the group on one
        device precisely so repeats hit on-chip memory), uncacheable
        payloads every time, plus all result bytes."""
        total = 0
        seen_data: Dict[str, bool] = {}
        seen_model: Dict[str, bool] = {}
        for instr in group.instrs:
            if instr.cache_key:
                if instr.cache_key not in seen_data:
                    seen_data[instr.cache_key] = True
                    total += instr.data_bytes
            else:
                total += instr.data_bytes
            if instr.model_cache_key:
                if instr.model_cache_key not in seen_model:
                    seen_model[instr.model_cache_key] = True
                    total += instr.model_bytes
            else:
                total += instr.model_bytes
            total += instr.out_bytes
        return total

    def exec_seconds(self, group: DispatchGroup, device: Optional[int] = None) -> float:
        """Modeled matrix-unit time for *group* on *device*.

        Static fallback: the lowering's per-instruction estimates.
        Profiled: the device's measured seconds-per-instruction times
        the group's instruction count.
        """
        if device is not None and self.profile is not None:
            spi = self.profile.seconds_per_instruction(device)
            if spi is not None:
                return spi * group.instruction_count
        return group.burst_seconds

    def transfer_seconds(self, device: int, nbytes: int) -> float:
        """Uncontended store-and-forward occupancy to *device*."""
        if nbytes <= 0:
            return 0.0
        return sum(
            link.occupancy_seconds(nbytes) for link in self._paths[device]
        )

    def group_seconds(self, group: DispatchGroup, device: int) -> float:
        """Uncontended cost of *group* on *device* (exec + transfer)."""
        return self.exec_seconds(group, device) + self.transfer_seconds(
            device, self.group_bytes(group)
        )

    # -- per-placement --------------------------------------------------

    def segment_seconds(
        self, groups: Sequence[DispatchGroup], device: int
    ) -> float:
        """Uncontended serial cost of a whole segment on *device*."""
        return sum(self.group_seconds(group, device) for group in groups)

    def segment_energy_joules(
        self,
        groups: Sequence[DispatchGroup],
        device: int,
        active_power_watts: float,
    ) -> float:
        """Active energy a segment burns on *device* (§8.1 decomposition).

        Charges the device's active draw for the whole time it holds
        the segment (execution plus its transfer window).  Platform
        idle power is excluded: within a fixed wall time the placement
        cannot change it, so only active joules differentiate
        candidates.
        """
        return active_power_watts * self.segment_seconds(groups, device)

    def placement_energy_joules(
        self,
        segments: Iterable[Tuple[int, Sequence[DispatchGroup]]],
        power_of: "Callable[[int], float]",
    ) -> float:
        """Total active joules of a placement (``power_of`` maps device
        index to active watts)."""
        return sum(
            self.segment_energy_joules(groups, device, power_of(device))
            for device, groups in segments
        )

    def makespan(
        self, segments: Iterable[Tuple[int, Sequence[DispatchGroup]]]
    ) -> float:
        """Estimated finish time of a placement.

        ``segments`` yields ``(device, groups)`` pairs.  The estimate is
        the max of (a) each device's serial segment cost and (b) each
        shared link's total serialized occupancy across every segment
        routed through it — the contention floor concurrent segments on
        one card cannot beat.
        """
        device_finish: List[float] = []
        link_occupancy: Dict[str, float] = {}
        for device, groups in segments:
            device_finish.append(self.segment_seconds(groups, device))
            nbytes = sum(self.group_bytes(group) for group in groups)
            if nbytes <= 0:
                continue
            for name in self._path_names[device]:
                if name in self._shared:
                    link = self.topology.links[name]
                    link_occupancy[name] = (
                        link_occupancy.get(name, 0.0)
                        + link.occupancy_seconds(nbytes)
                    )
        floors = list(link_occupancy.values())
        return max(device_finish + floors, default=0.0)
