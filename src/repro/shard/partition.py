"""Contiguous partition solvers for the segmentation planner.

Dispatch groups of one lowered operation must stay in order (each group
is a run of same-``group_key`` instructions and the merge step assumes
row spans follow group order), so sharding reduces to partitioning a
weight sequence into *contiguous* runs — one run per device.  Three
exact solvers cover the planner's needs:

* :func:`partition_weighted` — classic min-max contiguous partition
  into at most *k* non-empty parts (homogeneous devices);
* :func:`partition_bounded` — the same with a hard per-part capacity on
  a second "size" sequence (per-device memory bounds);
* :func:`partition_heterogeneous` — parts assigned in order to devices
  of differing speeds, minimizing the slowest device's finish time
  (profiled segmentation; empty parts allowed so a very slow device can
  receive nothing).

All return half-open index ranges ``(start, stop)``.  The hypothesis
suite (``tests/shard/test_partition.py``) pins disjointness, coverage,
bound respect, and optimality against brute force.
"""

from __future__ import annotations

from itertools import accumulate
from typing import List, Optional, Sequence, Tuple

Range = Tuple[int, int]


def _validate(weights: Sequence[float], k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    for w in weights:
        if w < 0:
            raise ValueError(f"weights must be >= 0, got {w}")


def _greedy_ranges(
    weights: Sequence[float],
    cap: float,
    sizes: Optional[Sequence[float]] = None,
    capacity: Optional[float] = None,
) -> List[Range]:
    # Run sums MUST be prefix-sum differences: the candidate caps in
    # _min_cap are built that way, and re-accumulating here can differ
    # by an ulp, making the optimal cap look infeasible.
    prefix_w = [0.0, *accumulate(weights)]
    prefix_s = [0.0, *accumulate(sizes)] if sizes is not None else None
    ranges: List[Range] = []
    start = 0
    for i in range(len(weights)):
        over = prefix_w[i + 1] - prefix_w[start] > cap
        if capacity is not None and prefix_s is not None:
            over = over or prefix_s[i + 1] - prefix_s[start] > capacity
        if i > start and over:
            ranges.append((start, i))
            start = i
    ranges.append((start, len(weights)))
    return ranges


def _greedy_count(
    weights: Sequence[float],
    cap: float,
    sizes: Optional[Sequence[float]] = None,
    capacity: Optional[float] = None,
) -> Optional[int]:
    """Parts a greedy left-to-right packing needs under *cap* (and the
    optional per-part *capacity* on *sizes*); None when infeasible."""
    prefix_w = [0.0, *accumulate(weights)]
    if any(
        prefix_w[i + 1] - prefix_w[i] > cap for i in range(len(weights))
    ):
        return None  # a single item can never fit
    if capacity is not None and sizes is not None:
        prefix_s = [0.0, *accumulate(sizes)]
        if any(
            prefix_s[i + 1] - prefix_s[i] > capacity
            for i in range(len(weights))
        ):
            return None
    return len(_greedy_ranges(weights, cap, sizes, capacity))


def _min_cap(
    weights: Sequence[float],
    k: int,
    sizes: Optional[Sequence[float]] = None,
    capacity: Optional[float] = None,
) -> float:
    """Smallest achievable max part weight: binary search over the
    finite candidate set of contiguous-run sums."""
    prefix = [0.0, *accumulate(weights)]
    candidates = sorted(
        {prefix[j] - prefix[i] for i in range(len(weights)) for j in range(i + 1, len(weights) + 1)}
    )
    lo, hi = 0, len(candidates) - 1
    best = candidates[-1]
    while lo <= hi:
        mid = (lo + hi) // 2
        parts = _greedy_count(weights, candidates[mid], sizes, capacity)
        if parts is not None and parts <= k:
            best = candidates[mid]
            hi = mid - 1
        else:
            lo = mid + 1
    return best


def partition_weighted(weights: Sequence[float], k: int) -> List[Range]:
    """Split *weights* into at most *k* contiguous non-empty parts
    minimizing the maximum part sum."""
    _validate(weights, k)
    if not weights:
        return []
    cap = _min_cap(weights, k)
    ranges = _greedy_ranges(weights, cap)
    assert len(ranges) <= k
    return ranges


def partition_bounded(
    weights: Sequence[float],
    sizes: Sequence[float],
    k: int,
    capacity: float,
) -> List[Range]:
    """:func:`partition_weighted` with a hard per-part bound: each
    part's total *sizes* must stay within *capacity* (the per-device
    memory limit).  Raises :class:`ValueError` when a single item
    exceeds *capacity* or *k* parts cannot satisfy it."""
    _validate(weights, k)
    if len(sizes) != len(weights):
        raise ValueError("weights and sizes must have equal length")
    if capacity <= 0:
        raise ValueError(f"capacity must be > 0, got {capacity}")
    if not weights:
        return []
    if max(sizes) > capacity:
        raise ValueError(
            f"an item of size {max(sizes)} cannot fit capacity {capacity}"
        )
    if _greedy_count(weights, sum(weights), sizes, capacity) > k:
        raise ValueError(
            f"{k} parts of capacity {capacity} cannot hold the sequence"
        )
    cap = _min_cap(weights, k, sizes, capacity)
    ranges = _greedy_ranges(weights, cap, sizes, capacity)
    assert len(ranges) <= k
    return ranges


def partition_heterogeneous(
    weights: Sequence[float], speeds: Sequence[float]
) -> List[Range]:
    """Assign contiguous runs, in order, to devices of given *speeds*.

    Device *j* receives the *j*-th run and finishes in
    ``sum(run_j) / speeds[j]``; the returned partition minimizes the
    maximum finish time.  Runs may be empty (``start == stop``) — the
    optimal plan for a crawling device can be to route nothing to it —
    and the ranges still tile ``[0, len(weights))`` in order.
    """
    if not speeds:
        raise ValueError("need at least one device speed")
    for s in speeds:
        if s <= 0:
            raise ValueError(f"speeds must be > 0, got {s}")
    _validate(weights, len(speeds))
    n, k = len(weights), len(speeds)
    prefix = [0.0, *accumulate(weights)]
    inf = float("inf")
    # best[j][i]: minimal max finish time placing the first i items on
    # the first j devices.  cut[j][i] reconstructs the boundary.
    best = [[inf] * (n + 1) for _ in range(k + 1)]
    cut = [[0] * (n + 1) for _ in range(k + 1)]
    best[0][0] = 0.0
    for j in range(1, k + 1):
        speed = speeds[j - 1]
        for i in range(n + 1):
            for t in range(i + 1):
                prev = best[j - 1][t]
                if prev == inf:
                    continue
                finish = max(prev, (prefix[i] - prefix[t]) / speed)
                if finish < best[j][i]:
                    best[j][i] = finish
                    cut[j][i] = t
    ranges: List[Range] = []
    i = n
    for j in range(k, 0, -1):
        t = cut[j][i]
        ranges.append((t, i))
        i = t
    ranges.reverse()
    return ranges
