"""Multi-process serving: asyncio admission tier + worker data planes.

:class:`MpTpuServer` keeps the :class:`~repro.serve.server.TpuServer`
front-of-house contract — admission control, tenant fairness, deadline
expiry, GEMM coalescing, exactly-once delivery, the ``snapshot()``
schema — while host lowering and simulated-device execution run in N
spawned worker processes, each owning a contiguous slice of the TPUs
(GPTPU's parallel host-side task dispatch, §6.1, without the GIL).

Data path: operand and result tensors cross the boundary through
per-worker :class:`~repro.mp.shm.ShmRing` segments (zero-copy views);
pipes carry only offsets and control messages.  Compiled plans gossip
between workers as §3.3 byte blobs so every worker's
:class:`~repro.plan.PlanCache` warms from any worker's first lowering.

Crash contract: the parent owns every shared-memory segment and every
terminal outcome.  When a worker dies (including SIGKILL), its pipe is
drained to EOF, its unresolved in-flight requests are requeued to
surviving workers, its segments are unlinked, and ``snapshot()`` keeps
reporting its last known device state — delivery stays exactly-once
because only the parent's once-only future resolve counts.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing as mp
import threading
import time
from collections import deque
from types import SimpleNamespace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.edgetpu.isa import Opcode
from repro.errors import DeviceFailure, LoadShed, RequestTimeout, ServingError
from repro.host.platform import Platform
from repro.mp.messages import WorkerSpec, decode_error, encode_request
from repro.mp.shm import RingFull, ShmRing
from repro.mp.worker import worker_main
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import coalesce, coalesce_key
from repro.serve.metrics import ServingMetrics
from repro.serve.request import ServeRequest
from repro.serve.server import ServeConfig
from repro.serve.slo import OverloadController
from repro.telemetry import (
    SpanTracer,
    get_tracer,
    merge_chrome_traces,
    to_chrome_trace,
)

#: Per-worker shared-memory ring capacity (one request ring + one
#: result ring each).  16 MiB holds hundreds of in-flight 1k² float32
#: operands; RingFull just parks the shipment until a completion frees
#: space, so undersizing degrades to backpressure, never failure.
DEFAULT_RING_BYTES = 16 * 1024 * 1024

_SNAPSHOT_TIMEOUT = 30.0


class _PoolFacade:
    """The slice of ``DevicePool`` surface the MP parent re-exports.

    The conformance campaigns arm ``server.pool.observer`` — events
    stream in from the workers (non-terminal) and the parent (terminal),
    so the suites run unchanged against the multi-process server.
    """

    def __init__(self) -> None:
        self.observer: Optional[Callable[[str, int, int], None]] = None


@dataclasses.dataclass
class _Shipment:
    """One in-flight request shipped to a worker."""

    sreq: ServeRequest
    worker_id: int
    #: Request-ring offsets to free once the worker reports done.
    offsets: Tuple[int, ...]


class _Worker:
    """Parent-side handle for one spawned data-plane worker."""

    def __init__(self, wid: int, device_names: Tuple[str, ...]) -> None:
        self.wid = wid
        self.device_names = device_names
        self.process: Optional[mp.process.BaseProcess] = None
        self.inbox = None  # parent -> worker command pipe (send side)
        self.outbox = None  # worker -> parent event pipe (recv side)
        self.snapbox = None  # worker -> parent snapshot/trace pipe
        self.req_ring: Optional[ShmRing] = None
        self.res_ring: Optional[ShmRing] = None
        self.alive = False
        self.ready = asyncio.Event()
        self.pid: Optional[int] = None
        #: Coalesce groups parked on RingFull, re-shipped as space frees.
        self.pending: deque = deque()
        self.inflight = 0
        #: Serialized sends: the dispatch task and sync snapshot() may
        #: write the command pipe from different threads.
        self.lock = threading.Lock()
        #: Last snapshot payload received (survives a crash).
        self.last_payload: Optional[dict] = None
        #: Out-of-band replies read while waiting for another kind.
        self.snap_stash: deque = deque()

    def send(self, msg: tuple) -> bool:
        if not self.alive:
            return False
        try:
            with self.lock:
                self.inbox.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False


class MpTpuServer:
    """Drop-in multi-process variant of :class:`TpuServer`."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[SpanTracer] = None,
        *,
        workers: int = 2,
        base_seed: int = 0,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        self.platform = platform or Platform()
        self.config = config or ServeConfig()
        self._clock = clock
        self.tracer = tracer if tracer is not None else get_tracer()
        n = self.platform.num_tpus
        if not 1 <= workers <= n:
            raise ValueError(
                f"workers must be in [1, num_tpus={n}], got {workers}"
            )
        self.num_workers = workers
        self.base_seed = base_seed
        self.ring_bytes = ring_bytes
        self.metrics = ServingMetrics(base_seed=base_seed, worker_id=0)
        self.slo = self.config.slo
        scheduling = self.config.scheduling
        if scheduling == "auto":
            scheduling = "edf" if self.slo is not None else "rr"
        self.admission = AdmissionController(
            self.config.max_queue_depth,
            self.config.per_tenant_limit,
            scheduling=scheduling,
        )
        self.overload: Optional[OverloadController] = (
            OverloadController(self.slo, self.config.max_queue_depth)
            if self.slo is not None and self.config.shed_enabled
            else None
        )
        #: Timeout count already fed to the overload governor.
        self._timeouts_seen = 0
        self.pool = _PoolFacade()
        # Contiguous device slices; worker 0 owns tpu0, so single-request
        # behaviour (and the shard suite's tpu0 expectations) match the
        # in-process server.
        per, extra = divmod(n, workers)
        self._workers: List[_Worker] = []
        base = 0
        for wid in range(workers):
            count = per + (1 if wid < extra else 0)
            names = tuple(
                self.platform.devices[base + i].name for i in range(count)
            )
            self._workers.append(_Worker(wid, names))
            base += count
        #: Sticky routing: coalesce key -> worker id, so a shared-B GEMM
        #: stream keeps hitting one worker's warmed plan + residency.
        self._routes: Dict[tuple, int] = {}
        self._inflight: Dict[int, _Shipment] = {}
        self._plan_blobs: Dict[str, bytes] = {}
        self._serve_seq = 0
        self._wakeup = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._stopping = False
        self.started_at: Optional[float] = None
        self.worker_crashes = 0
        self.requeued = 0
        self._final_snapshot: Optional[dict] = None
        self.worker_traces: List[dict] = []

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker fleet and start the admission loop."""
        if self._loop_task is not None:
            return
        self._loop = asyncio.get_running_loop()
        self.started_at = self._clock()
        ctx = mp.get_context("spawn")
        base = 0
        for worker in self._workers:
            count = len(worker.device_names)
            injectors = tuple(
                self.platform.devices[base + i].fault_injector
                for i in range(count)
            )
            base += count
            worker.req_ring = ShmRing.create(self.ring_bytes)
            worker.res_ring = ShmRing.create(self.ring_bytes)
            cmd_recv, cmd_send = ctx.Pipe(duplex=False)
            out_recv, out_send = ctx.Pipe(duplex=False)
            snap_recv, snap_send = ctx.Pipe(duplex=False)
            spec = WorkerSpec(
                worker_id=worker.wid,
                base_seed=self.base_seed,
                system_config=self.platform.config,
                device_names=worker.device_names,
                config=self.config,
                req_ring_name=worker.req_ring.shm.name,
                req_ring_capacity=self.ring_bytes,
                res_ring_name=worker.res_ring.shm.name,
                res_ring_capacity=self.ring_bytes,
                injectors=injectors,
                trace=self.tracer.enabled,
            )
            worker.process = ctx.Process(
                target=worker_main,
                args=(spec, cmd_recv, out_send, snap_send),
                daemon=True,
                name=f"repro-mp-worker{worker.wid}",
            )
            worker.process.start()
            cmd_recv.close()
            out_send.close()
            snap_send.close()
            worker.inbox = cmd_send
            worker.outbox = out_recv
            worker.snapbox = snap_recv
            worker.alive = True
            self._loop.add_reader(
                worker.outbox.fileno(), self._drain_outbox, worker
            )
            self._loop.add_reader(
                worker.process.sentinel, self._on_worker_exit, worker
            )
        await asyncio.wait_for(
            asyncio.gather(*(w.ready.wait() for w in self._workers)),
            timeout=120.0,
        )
        self._loop_task = self._loop.create_task(
            self._dispatch_loop(), name="mp-serve-dispatch"
        )

    async def stop(self) -> None:
        """Drain snapshots, stop workers, reap processes, unlink rings."""
        if self._loop is None:
            return
        self._stopping = True
        if self._loop_task is not None:
            self._loop_task.cancel()
            await asyncio.gather(self._loop_task, return_exceptions=True)
            self._loop_task = None
        # Fail anything still unresolved (mirrors pool.stop semantics:
        # stop() after drain() sees none).
        for gid in list(self._inflight):
            shipment = self._inflight.pop(gid)
            if shipment.sreq.reject(
                ServingError("server stopped with requests in flight")
            ):
                self.metrics.failed += 1
        # Cache the final merged snapshot (and per-worker traces) while
        # the fleet can still answer, so post-stop snapshot() works.
        self._refresh_worker_payloads()
        if self.tracer.enabled:
            self._collect_traces()
        self._final_snapshot = self._merged_snapshot()
        for worker in self._workers:
            worker.send(("stop",))
        deadline = time.monotonic() + 10.0
        for worker in self._workers:
            if worker.process is None:
                continue
            timeout = max(deadline - time.monotonic(), 0.1)
            await self._loop.run_in_executor(None, worker.process.join, timeout)
            if worker.process.exitcode is None:
                worker.process.terminate()
                await self._loop.run_in_executor(None, worker.process.join, 5.0)
            self._teardown_worker(worker)
        self._loop = None

    async def __aenter__(self) -> "MpTpuServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    def _teardown_worker(self, worker: _Worker) -> None:
        """Remove readers, close pipes, unlink rings (idempotent)."""
        worker.alive = False
        if self._loop is not None:
            if worker.outbox is not None:
                try:
                    self._loop.remove_reader(worker.outbox.fileno())
                except (OSError, ValueError):
                    pass
            if worker.process is not None:
                try:
                    self._loop.remove_reader(worker.process.sentinel)
                except (OSError, ValueError):
                    pass
        for conn in (worker.inbox, worker.outbox, worker.snapbox):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        worker.inbox = worker.outbox = worker.snapbox = None
        for ring in (worker.req_ring, worker.res_ring):
            if ring is not None:
                ring.close()
                ring.unlink()
        worker.req_ring = worker.res_ring = None

    # -- client API (mirrors TpuServer) ---------------------------------

    def submit_nowait(
        self,
        request: OperationRequest,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> "asyncio.Future":
        """Admit one request; raise :class:`QueueFull` synchronously."""
        if self._loop_task is None:
            raise ServingError(
                "server is not started; use 'async with MpTpuServer(...)'"
            )
        now = self._clock()
        self._serve_seq += 1
        serve_id = self._serve_seq
        request = dataclasses.replace(
            request,
            task_id=serve_id,
            input_name=request.input_name or f"serve{serve_id}",
        )
        tier_name, priority, sheddable = "", 0, True
        deadline = None if deadline_seconds is None else now + deadline_seconds
        if self.slo is not None:
            tier = self.slo.tier_of(request.tenant)
            tier_name, priority, sheddable = tier.name, tier.priority, tier.sheddable
            if deadline is None and tier.deadline_budget is not None:
                deadline = now + tier.deadline_budget
        sreq = ServeRequest(
            serve_id=serve_id,
            tenant=request.tenant,
            request=request,
            future=asyncio.get_running_loop().create_future(),
            submitted=now,
            deadline=deadline,
            tier=tier_name,
            priority=priority,
            sheddable=sheddable,
        )
        self.metrics.submitted += 1
        if tier_name:
            self.metrics.submitted_by_tier[tier_name] += 1
        if self.overload is not None and self.overload.should_shed(
            priority, sheddable
        ):
            self.metrics.record_shed(tier_name)
            self.tracer.instant(
                "shed", cat="serve", track="mp-server", serve_id=serve_id,
                tier=tier_name,
            )
            raise LoadShed(
                f"tier {tier_name!r} shed under overload "
                f"(level {self.overload.level}); retry later",
                tier=tier_name,
            )
        try:
            self.admission.offer(sreq)
        except Exception:
            self.metrics.rejected += 1
            self.tracer.instant(
                "reject", cat="serve", track="mp-server", serve_id=serve_id
            )
            raise
        self.tracer.instant(
            "submit",
            cat="serve",
            track="mp-server",
            serve_id=serve_id,
            tenant=request.tenant,
        )
        self._wakeup.set()
        return sreq.future

    async def submit(
        self,
        request: OperationRequest,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> np.ndarray:
        """Admit one request and await its result."""
        return await self.submit_nowait(request, deadline_seconds=deadline_seconds)

    async def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tenant: str = "",
        quant: QuantMode = QuantMode.SCALE,
        chunks: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> np.ndarray:
        """Convenience wrapper: submit one conv2D-style GEMM (§7.1.2)."""
        attrs: Mapping[str, Any] = (
            {"gemm": True} if chunks is None else {"gemm": True, "gemm_chunks": chunks}
        )
        request = OperationRequest(
            task_id=0,
            opcode=Opcode.CONV2D,
            inputs=(np.asarray(a), np.asarray(b)),
            quant=quant,
            attrs=attrs,
            tenant=tenant,
        )
        return await self.submit(request, deadline_seconds=deadline_seconds)

    async def drain(self) -> None:
        """Wait until no request is queued, parked, or in a worker."""
        while (
            self.admission.depth > 0
            or self._inflight
            or any(w.pending for w in self._workers)
        ):
            self._wakeup.set()
            await asyncio.sleep(0.001)

    # -- dispatch / shipping --------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            if self.admission.depth == 0:
                self._wakeup.clear()
                await self._wakeup.wait()
            await asyncio.sleep(0)
            now = self._clock()
            for sreq in self.admission.expire(now):
                if sreq.reject(
                    RequestTimeout(
                        f"request {sreq.serve_id} expired in the admission queue"
                    )
                ):
                    self.metrics.record_timeout(sreq)
                    self._emit("timeout", sreq.serve_id, -1)
            depth = self.admission.depth
            self.metrics.sample_queue_depth(depth)
            batch = self.admission.drain(self.config.max_batch)
            if self.overload is not None:
                # Timeout delta (admission + worker-reported) drives the
                # EWMA: the slow-death overload signal.
                misses = self.metrics.timeouts - self._timeouts_seen
                self._timeouts_seen = self.metrics.timeouts
                self.overload.observe(depth, misses, len(batch))
            if not batch:
                continue
            if self.slo is not None and self.slo.preempt:
                self._preempt_parked(batch)
            sp = self.tracer.begin(
                "ship_batch", cat="serve", track="mp-server", drained=len(batch)
            )
            for group in coalesce(batch, self.config.max_coalesce):
                self._ship_group(group)
            self.tracer.end(sp)

    def _preempt_parked(self, batch: List[ServeRequest]) -> None:
        """Requeue parked lower-tier groups ahead of an urgent batch.

        In the MP server only groups still parked on a worker's pending
        deque (never shipped, pre-lowering) are preemptible — anything
        already in a worker's ring may be executing.  Whole groups are
        un-coalesced and their members re-admitted via ``requeue``, so
        exactly-once delivery is untouched: no work was in flight.
        """
        urgent = min(s.priority for s in batch if not s.failed)
        for worker in self._workers:
            if not worker.pending:
                continue
            keep: deque = deque()
            for group in worker.pending:
                live = [s for s in group if not s.failed]
                if live and all(s.priority > urgent for s in live):
                    for sreq in live:
                        sreq.preemptions += 1
                        self.metrics.preemptions += 1
                        self._emit("preempt", sreq.serve_id, -1)
                        self.admission.requeue(sreq)
                else:
                    keep.append(group)
            worker.pending = keep

    def _alive_workers(self) -> List[_Worker]:
        return [w for w in self._workers if w.alive]

    def _emit(self, event: str, serve_id: int, device: int) -> None:
        if self.pool.observer is not None:
            self.pool.observer(event, serve_id, device)

    def _route(self, group: List[ServeRequest]) -> Optional[_Worker]:
        """Pick the worker for one coalescible group (sticky by key)."""
        alive = self._alive_workers()
        if not alive:
            return None
        key = coalesce_key(group[0].request)
        if key is not None:
            wid = self._routes.get(key)
            if wid is not None and self._workers[wid].alive:
                return self._workers[wid]
        pick = min(alive, key=lambda w: (w.inflight + len(w.pending), w.wid))
        if key is not None:
            self._routes[key] = pick.wid
        return pick

    def _ship_group(self, group: List[ServeRequest]) -> None:
        live = [s for s in group if not s.failed]
        if not live:
            return
        worker = self._route(live)
        if worker is None:
            for sreq in live:
                if sreq.reject(
                    DeviceFailure("no live data-plane workers remain")
                ):
                    self.metrics.failed += 1
                    self._emit("give-up", sreq.serve_id, -1)
            return
        if worker.pending:
            # Preserve FIFO per worker behind already-parked groups.
            worker.pending.append(live)
            return
        if not self._try_ship(worker, live):
            worker.pending.append(live)

    def _try_ship(self, worker: _Worker, group: List[ServeRequest]) -> bool:
        """Stage one group into the worker's request ring and send it.

        Returns False (after rolling back any partial staging) when the
        ring lacks space; the caller parks the group.
        """
        live = [s for s in group if not s.failed]
        if not live:
            return True
        now = self._clock()
        entries = []
        staged: List[Tuple[ServeRequest, Tuple[int, ...]]] = []
        try:
            for sreq in live:
                remaining = (
                    None if sreq.deadline is None else max(sreq.deadline - now, 0.0)
                )
                entry, offsets = encode_request(
                    worker.req_ring, sreq.serve_id, sreq.request, remaining
                )
                entries.append(entry)
                staged.append((sreq, tuple(offsets)))
        except RingFull:
            for _sreq, offsets in staged:
                for offset in offsets:
                    worker.req_ring.free(offset)
            return False
        if not worker.send(("req", entries)):
            for _sreq, offsets in staged:
                for offset in offsets:
                    worker.req_ring.free(offset)
            return False
        for sreq, offsets in staged:
            self._inflight[sreq.serve_id] = _Shipment(sreq, worker.wid, offsets)
            worker.inflight += 1
        return True

    def _flush_pending(self, worker: _Worker) -> None:
        while worker.pending:
            group = worker.pending[0]
            if not self._try_ship(worker, group):
                return
            worker.pending.popleft()

    # -- worker -> parent messages --------------------------------------

    def _drain_outbox(self, worker: _Worker) -> None:
        try:
            while worker.outbox is not None and worker.outbox.poll(0):
                self._handle_message(worker, worker.outbox.recv())
        except Exception:
            # Truncated pickle from a dying worker; the sentinel reader
            # performs the actual crash handling.
            pass

    def _handle_message(self, worker: _Worker, msg: tuple) -> None:
        kind = msg[0]
        if kind == "ready":
            worker.pid = msg[2]
            worker.ready.set()
        elif kind == "done":
            self._on_done(worker, *msg[1:])
        elif kind == "event":
            _kind, event, gid, device = msg
            self._emit(event, gid, device)
        elif kind == "plans":
            self._gossip_plans(worker, msg[1])

    def _on_done(
        self,
        worker: _Worker,
        gid: int,
        ok: bool,
        ref: Optional[tuple],
        err: Optional[tuple],
    ) -> None:
        shipment = self._inflight.pop(gid, None)
        if shipment is not None:
            owner = self._workers[shipment.worker_id]
            owner.inflight = max(owner.inflight - 1, 0)
            if owner.req_ring is not None:
                for offset in shipment.offsets:
                    owner.req_ring.free(offset)
                self._flush_pending(owner)
        if shipment is None:
            # Late duplicate after a crash requeue already re-shipped
            # (or resolved) this id; still recycle the result block.
            if ok and ref is not None:
                worker.send(("rfree", ref[0]))
            return
        sreq = shipment.sreq
        if ok:
            offset, _nbytes, shape, dtype = ref
            result = np.array(
                worker.res_ring.read_view(offset, shape, dtype), copy=True
            )
            worker.send(("rfree", offset))
            # Deadline holds at parent-side delivery (mirrors the
            # in-process dispatcher): a worker answer that crossed the
            # boundary after the budget elapsed is a miss, not a result.
            if sreq.expired(self._clock()):
                if sreq.reject(RequestTimeout(
                    f"request {gid} completed after its deadline"
                )):
                    self.metrics.record_timeout(sreq)
                self._emit("timeout", gid, -1)
                return
            # resolve() reads sreq.op.result — THE single delivery path
            # (record_delivery) stays intact across the process boundary.
            sreq.op = SimpleNamespace(result=result)
            if self.metrics.record_delivery(sreq, self._clock()):
                self._emit("deliver", gid, -1)
        else:
            exc = decode_error(err)
            if sreq.reject(exc):
                if isinstance(exc, RequestTimeout):
                    self.metrics.record_timeout(sreq)
                    self._emit("timeout", gid, -1)
                else:
                    self.metrics.failed += 1
                    self._emit("give-up", gid, -1)

    def _gossip_plans(self, origin: _Worker, plans: List[Tuple[str, bytes]]) -> None:
        fresh = [
            (sig, blob) for sig, blob in plans if sig not in self._plan_blobs
        ]
        if not fresh:
            return
        for sig, blob in fresh:
            self._plan_blobs[sig] = blob
        blobs = [blob for _sig, blob in fresh]
        for worker in self._alive_workers():
            if worker.wid != origin.wid:
                worker.send(("warm", blobs))

    # -- crash recovery -------------------------------------------------

    def _on_worker_exit(self, worker: _Worker) -> None:
        if self._loop is not None and worker.process is not None:
            try:
                self._loop.remove_reader(worker.process.sentinel)
            except (OSError, ValueError):
                pass
        if self._stopping or not worker.alive:
            return
        # Consume everything the worker managed to send before dying —
        # a request it completed (and reported) must not be re-executed.
        self._drain_outbox(worker)
        self.worker_crashes += 1
        orphaned = [
            gid
            for gid, shipment in self._inflight.items()
            if shipment.worker_id == worker.wid
        ]
        orphans = [self._inflight.pop(gid).sreq for gid in orphaned]
        parked = [group for group in worker.pending]
        worker.pending.clear()
        worker.inflight = 0
        self._routes = {
            key: wid for key, wid in self._routes.items() if wid != worker.wid
        }
        self._teardown_worker(worker)
        for sreq in orphans:
            if not sreq.failed and not sreq.future.done():
                self.requeued += 1
                self._emit("retry", sreq.serve_id, -1)
                self._ship_group([sreq])
        for group in parked:
            self._ship_group([s for s in group if not s.failed])

    # -- snapshots / traces ---------------------------------------------

    def _round_trip(self, worker: _Worker, request: tuple, kind: str) -> Optional[Any]:
        """Synchronously ask one worker for a reply of *kind*."""
        if not worker.send(request):
            return None
        deadline = time.monotonic() + _SNAPSHOT_TIMEOUT
        stash = worker.snap_stash
        for _ in range(len(stash)):
            msg = stash.popleft()
            if msg[0] == kind:
                return msg[2]
            stash.append(msg)
        while time.monotonic() < deadline:
            try:
                if not worker.snapbox.poll(0.05):
                    continue
                msg = worker.snapbox.recv()
            except (EOFError, OSError):
                return None
            if msg[0] == kind:
                return msg[2]
            stash.append(msg)
        return None

    def _refresh_worker_payloads(self) -> None:
        for worker in self._alive_workers():
            payload = self._round_trip(worker, ("snapshot",), "snapshot")
            if payload is not None:
                worker.last_payload = payload

    def _collect_traces(self) -> None:
        self.worker_traces = []
        for worker in self._alive_workers():
            trace = self._round_trip(worker, ("trace",), "trace")
            if trace is not None:
                self.worker_traces.append(trace)

    def chrome_trace(self, counters: Optional[dict] = None) -> dict:
        """Merged pid-tagged Chrome trace: parent lane + one per worker."""
        import os

        parent = to_chrome_trace(
            self.tracer,
            counters,
            pid=os.getpid(),
            process_name="repro-mp-parent",
        )
        return merge_chrome_traces([parent] + self.worker_traces)

    def snapshot(self) -> dict:
        """Merged metrics snapshot in the TpuServer schema (+ workers)."""
        if self._loop is None and self._final_snapshot is not None:
            return self._final_snapshot
        self._refresh_worker_payloads()
        return self._merged_snapshot()

    @staticmethod
    def _strip_terminal(state: dict) -> dict:
        """Zero a worker's terminal accounting before merging.

        The parent's once-only resolve is the authority for outcomes and
        end-to-end latency; a worker's local view of the same requests
        would double-count them (and its latencies exclude queueing in
        the parent).
        """
        state = dict(state)
        for key in ("submitted", "rejected", "shed", "timeouts", "completed", "failed"):
            state[key] = 0
        empty = {"count": 0, "total": 0.0, "max": float("-inf"), "values": []}
        state["latencies"] = empty
        state["queue_depth_samples"] = dict(empty)
        # Per-tier terminal outcomes are parent-authoritative too; only
        # busy_seconds-by-tier is genuinely worker-side (the parent never
        # sees device occupancy).
        for key in (
            "submitted_by_tier",
            "completed_by_tier",
            "shed_by_tier",
            "miss_by_tier",
        ):
            state[key] = {}
        state["latency_by_tier"] = {}
        return state

    def _merged_snapshot(self) -> dict:
        elapsed = (
            self._clock() - self.started_at if self.started_at is not None else None
        )
        merged = ServingMetrics(base_seed=self.base_seed, worker_id=0)
        merged.merge_state(self.metrics.export_state())
        payloads = [w.last_payload for w in self._workers if w.last_payload]
        for payload in payloads:
            merged.merge_state(self._strip_terminal(payload["metrics"]))
        snap = merged.snapshot(elapsed)
        healthy = 0
        breakers: dict = {}
        quarantine: dict = {}
        plan_cache: Optional[dict] = None
        profile = {"observations": 0, "profiled": False, "seconds_per_instruction": {}}
        shard_enabled = False
        for payload in payloads:
            wsnap = payload["snapshot"]
            healthy += wsnap.get("platform", {}).get("healthy", 0)
            breakers.update(wsnap.get("breakers", {}))
            quarantine.update(wsnap.get("quarantine", {}))
            if "plan_cache" in wsnap:
                if plan_cache is None:
                    plan_cache = dict.fromkeys(wsnap["plan_cache"], 0.0)
                for key, value in wsnap["plan_cache"].items():
                    plan_cache[key] += value
            wprofile = wsnap.get("sharding", {}).get("profile", {})
            profile["observations"] += wprofile.get("observations", 0)
            profile["profiled"] = profile["profiled"] or wprofile.get("profiled", False)
            profile["seconds_per_instruction"].update(
                wprofile.get("seconds_per_instruction", {})
            )
            shard_enabled = shard_enabled or wsnap.get("sharding", {}).get(
                "enabled", False
            )
        snap["platform"] = {"tpus": self.platform.num_tpus, "healthy": healthy}
        snap["breakers"] = breakers
        if quarantine:
            snap["quarantine"] = quarantine
        if plan_cache is not None:
            lookups = plan_cache.get("hits", 0) + plan_cache.get("misses", 0)
            plan_cache["hit_rate"] = (
                plan_cache.get("hits", 0) / lookups if lookups else 0.0
            )
            snap["plan_cache"] = plan_cache
        snap["sharding"]["enabled"] = shard_enabled
        snap["sharding"]["profile"] = profile
        if self.overload is not None:
            snap["overload"] = self.overload.snapshot()
        snap["workers"] = {
            "count": self.num_workers,
            "alive": len(self._alive_workers()),
            "crashes": self.worker_crashes,
            "requeued": self.requeued,
            "pids": {
                w.wid: (w.last_payload or {}).get("pid", w.pid)
                for w in self._workers
            },
            "host_seconds": {
                w.wid: w.last_payload["host_seconds"]
                for w in self._workers
                if w.last_payload
            },
            "devices": {w.wid: list(w.device_names) for w in self._workers},
        }
        return snap

    def worker_pids(self) -> Dict[int, Optional[int]]:
        """Live worker pids (the crash-injection hook for tests/bench)."""
        return {w.wid: w.pid for w in self._workers if w.alive}
