"""Shared-memory ring allocators for the multi-process data plane.

One :class:`ShmRing` wraps one ``multiprocessing.shared_memory`` segment
and hands out bump-pointer blocks inside it.  Int8 tiles and float
results cross the parent/worker boundary as *offsets into the ring*
(zero-copy ``numpy`` views on both sides) instead of pickled ndarrays —
the GPTPU host-dispatch analogue of pinned DMA staging buffers.

Roles are asymmetric on purpose:

* the **owner** (always the parent process) creates and eventually
  unlinks the segment, so the name disappears from ``/dev/shm`` even
  when a worker is SIGKILL'd mid-request;
* the **producer** (parent for request rings, worker for result rings)
  runs the allocator — ``alloc`` / ``free`` are producer-local state,
  never shared — and the consumer only materializes read views.

Blocks never wrap: an allocation that does not fit before the end of
the segment burns the tail gap (recorded as an already-freed pad block)
and restarts at offset 0.  ``free`` may run out of allocation order;
the tail only advances over the longest freed prefix, preserving the
invariant that live bytes are exactly the ring span from tail to head.
"""

from __future__ import annotations

from collections import deque
from multiprocessing import shared_memory
from typing import Deque, Optional, Set, Tuple

import numpy as np

#: Block alignment (bytes); int8 tile rows stay cache-line aligned.
ALIGN = 64


class RingFull(Exception):
    """No contiguous span of the requested size is free right now.

    Not an error condition: the producer parks the shipment and retries
    when the consumer's next completion frees space.
    """


class ShmRing:
    """Bump-pointer ring allocator over one shared-memory segment."""

    def __init__(
        self, shm: shared_memory.SharedMemory, capacity: int, owner: bool
    ) -> None:
        self.shm = shm
        self.capacity = capacity
        self.owner = owner
        self._head = 0
        self._tail = 0
        self._used = 0
        #: Live + pad blocks in allocation order: (offset, padded size).
        self._order: Deque[Tuple[int, int]] = deque()
        self._freed: Set[int] = set()
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def create(cls, capacity: int, name: Optional[str] = None) -> "ShmRing":
        """Create a fresh segment; the caller owns (and must unlink) it."""
        if capacity < ALIGN:
            raise ValueError(f"ring capacity must be >= {ALIGN}, got {capacity}")
        shm = shared_memory.SharedMemory(create=True, size=capacity, name=name)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        """Attach to an existing segment without adopting its lifecycle.

        The parent owns create/unlink; a worker must not let its
        ``resource_tracker`` adopt the segment, or a worker exit (clean
        or SIGKILL'd) would unlink it out from under the parent and
        print leak warnings.  Python 3.13+ registers attachments unless
        ``track=False``; earlier versions never track attachments, so
        the plain constructor is already safe there.
        """
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            shm = shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, owner=False)

    def close(self) -> None:
        """Unmap this process's view (unlink separately, owner only)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.shm.close()
        except BufferError:
            # Live numpy views still reference the mapping (e.g. a
            # worker torn down mid-lowering); the OS reclaims it at
            # process exit and the owner's unlink removes the name.
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only; idempotent)."""
        if not self.owner:
            raise RuntimeError("only the owning side may unlink a ring")
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    # -- allocator (producer side only) ---------------------------------

    @staticmethod
    def _pad(nbytes: int) -> int:
        return max(ALIGN, (int(nbytes) + ALIGN - 1) & ~(ALIGN - 1))

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated (pads included)."""
        return self._used

    @property
    def live_blocks(self) -> int:
        """Allocated, not-yet-freed block count (pads excluded)."""
        return len(self._order) - len(self._freed)

    def alloc(self, nbytes: int) -> Tuple[int, int]:
        """Reserve a contiguous block; returns ``(offset, padded size)``.

        Raises :class:`RingFull` when no span fits, ``ValueError`` when
        the request could never fit an empty ring.
        """
        n = self._pad(nbytes)
        if n > self.capacity - ALIGN:
            raise ValueError(
                f"block of {nbytes} bytes exceeds ring capacity {self.capacity}"
            )
        if self._used == 0:
            self._head = self._tail = 0
        if self._used + n > self.capacity - ALIGN:
            raise RingFull(f"{n} bytes requested, {self._used} in use")
        if self._head >= self._tail:
            if self._head + n <= self.capacity:
                offset = self._head
            else:
                # Burn the tail-end gap as a pre-freed pad block and
                # wrap; the gap participates in `used` until the tail
                # sweep crosses it, keeping accounting exact.
                gap = self.capacity - self._head
                if self._used + gap + n > self.capacity - ALIGN or n > self._tail:
                    raise RingFull(f"wrap needs {gap + n} bytes")
                self._order.append((self._head, gap))
                self._freed.add(self._head)
                self._used += gap
                offset = 0
        else:
            if self._head + n > self._tail:
                raise RingFull(f"{n} bytes requested at head {self._head}")
            offset = self._head
        self._head = (offset + n) % self.capacity
        self._order.append((offset, n))
        self._used += n
        return offset, n

    def free(self, offset: int) -> None:
        """Release one block; the tail sweeps contiguous freed blocks."""
        self._freed.add(offset)
        while self._order and self._order[0][0] in self._freed:
            off, size = self._order.popleft()
            self._freed.discard(off)
            self._used -= size
            self._tail = (off + size) % self.capacity

    def reset(self) -> None:
        """Forget all allocations (crash recovery on a requeued ring)."""
        self._head = self._tail = self._used = 0
        self._order.clear()
        self._freed.clear()

    # -- data movement --------------------------------------------------

    def write_array(self, array: np.ndarray) -> Tuple[int, int, tuple, str]:
        """Copy *array* into a fresh block; returns a shippable ref.

        The ref is ``(offset, nbytes, shape, dtype)`` — everything the
        other side needs to materialize a zero-copy view.
        """
        contiguous = np.ascontiguousarray(array)
        nbytes = max(contiguous.nbytes, 1)
        offset, _ = self.alloc(nbytes)
        if contiguous.nbytes:
            view = np.ndarray(
                contiguous.shape,
                dtype=contiguous.dtype,
                buffer=self.shm.buf,
                offset=offset,
            )
            view[...] = contiguous
        return offset, nbytes, tuple(contiguous.shape), contiguous.dtype.str

    def read_view(self, offset: int, shape: tuple, dtype: str) -> np.ndarray:
        """Zero-copy ndarray view of a block written by the other side."""
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.shm.buf, offset=offset)
