"""Multi-process data plane for the serving stack (ROADMAP item 1).

The asyncio :class:`~repro.serve.server.TpuServer` stays the admission /
coalescing / exactly-once tier; :class:`MpTpuServer` shards the
Tensorizer + simulated-device pool across spawned worker processes so
host lowering escapes the GIL.  Tensors travel through
:class:`~repro.mp.shm.ShmRing` shared-memory rings as zero-copy views;
compiled plans gossip between workers in their §3.3 byte serialization.

See docs/serving.md ("Multi-process data plane") for the architecture
and the crash-recovery contract.
"""

from repro.mp.messages import WorkerSpec, decode_request, encode_request
from repro.mp.server import DEFAULT_RING_BYTES, MpTpuServer
from repro.mp.shm import RingFull, ShmRing

__all__ = [
    "DEFAULT_RING_BYTES",
    "MpTpuServer",
    "RingFull",
    "ShmRing",
    "WorkerSpec",
    "decode_request",
    "encode_request",
]
