"""The data-plane worker process.

Each worker runs a complete in-process :class:`~repro.serve.server.TpuServer`
over its own slice of the platform's simulated TPUs (devices renamed to
their *global* identities, so breakers, quarantine, and shard profiles
merge back into parent snapshots without translation).  Host lowering,
the plan cache, the ABFT/vote integrity layer, intra-worker sharding,
and quarantine/breaker handling all run here, on a core of their own —
the escape hatch from the parent's GIL.

Protocol: see :mod:`repro.mp.messages`.  The worker never forwards
terminal pool events (deliver / give-up / timeout); the parent is
authoritative for exactly-once accounting, which is what makes a crash
requeue of this worker's in-flight requests safe.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.host.platform import Platform
from repro.mp.messages import (
    TERMINAL_EVENTS,
    WorkerSpec,
    decode_request,
    encode_error,
)
from repro.mp.shm import RingFull, ShmRing
from repro.plan import parse_plan, serialize_plan
from repro.serve.metrics import ServingMetrics
from repro.serve.server import TpuServer
from repro.telemetry import SpanTracer, to_chrome_trace


class _WorkerState:
    """Mutable worker-side session state shared by the pipe handlers."""

    def __init__(self, spec: WorkerSpec, server: TpuServer, outbox) -> None:
        self.spec = spec
        self.server = server
        self.outbox = outbox
        #: worker-local serve id -> parent (global) serve id.
        self.id_map: Dict[int, int] = {}
        #: global serve ids whose results wait for result-ring space.
        self.parked: Deque[Tuple[int, np.ndarray]] = deque()
        #: plan signatures already shipped to the parent.
        self.shipped_plans: set = set()
        self.stopping = False


def _global_device(spec: WorkerSpec, local_index: int) -> int:
    """Translate a worker-local device index to the global index."""
    if 0 <= local_index < len(spec.device_names):
        return int(spec.device_names[local_index][3:])
    return -1


def _forward_event(state: _WorkerState, event: str, local_id: int, device: int) -> None:
    if event in TERMINAL_EVENTS:
        return
    gid = state.id_map.get(local_id, -1)
    try:
        state.outbox.send(("event", event, gid, _global_device(state.spec, device)))
    except (BrokenPipeError, OSError):
        pass  # parent is gone; the daemon flag reaps us shortly


def _ship_new_plans(state: _WorkerState) -> None:
    """Gossip freshly captured plans to the parent (§3.3 bytes)."""
    cache = state.server.plan_cache
    if cache is None:
        return
    fresh = []
    for plan in cache.plans():
        if plan.signature not in state.shipped_plans:
            state.shipped_plans.add(plan.signature)
            try:
                fresh.append((plan.signature, serialize_plan(plan)))
            except Exception:
                pass  # non-serializable plan shapes stay worker-local
    if fresh:
        state.outbox.send(("plans", fresh))


def _flush_parked(state: _WorkerState, res_ring: ShmRing) -> None:
    while state.parked:
        gid, result = state.parked[0]
        if not _try_send_result(state, res_ring, gid, result):
            return
        state.parked.popleft()


def _try_send_result(
    state: _WorkerState, res_ring: ShmRing, gid: int, result: np.ndarray
) -> bool:
    try:
        ref = res_ring.write_array(result)
    except RingFull:
        return False
    state.outbox.send(("done", gid, True, ref, None))
    return True


def _on_future_done(state: _WorkerState, res_ring: ShmRing, gid: int, fut) -> None:
    exc = fut.exception() if not fut.cancelled() else None
    if fut.cancelled() or exc is not None:
        err = encode_error(exc) if exc is not None else ("ServingError", "cancelled")
        state.outbox.send(("done", gid, False, None, err))
    else:
        result = np.asarray(fut.result())
        if not _try_send_result(state, res_ring, gid, result):
            state.parked.append((gid, result))
    _ship_new_plans(state)


def _warm_plans(state: _WorkerState, blobs: List[bytes]) -> None:
    cache = state.server.plan_cache
    if cache is None:
        return
    for blob in blobs:
        try:
            plan = parse_plan(blob)
        except Exception:
            continue
        state.shipped_plans.add(plan.signature)
        if cache.peek(plan.signature) is None:
            cache.put(plan.signature, plan)


def _remap_profile(spec: WorkerSpec, snap: dict) -> dict:
    """Rewrite local ``tpu{i}`` shard-profile keys to global names."""
    profile = snap.get("sharding", {}).get("profile")
    if profile:
        spi = profile.get("seconds_per_instruction", {})
        profile["seconds_per_instruction"] = {
            spec.device_names[int(name[3:])]: value for name, value in spi.items()
        }
    return snap


def _snapshot_payload(
    state: _WorkerState, host_t0: float, wall_t0: float
) -> dict:
    return {
        "pid": os.getpid(),
        "worker_id": state.spec.worker_id,
        "host_seconds": time.process_time() - host_t0,
        "wall_seconds": time.monotonic() - wall_t0,
        "metrics": state.server.metrics.export_state(),
        "snapshot": _remap_profile(state.spec, state.server.snapshot()),
    }


async def _amain(spec: WorkerSpec, inbox, outbox, snapbox) -> None:
    host_t0 = time.process_time()
    wall_t0 = time.monotonic()
    req_ring = ShmRing.attach(spec.req_ring_name, spec.req_ring_capacity)
    res_ring = ShmRing.attach(spec.res_ring_name, spec.res_ring_capacity)

    n_local = len(spec.device_names)
    platform = Platform(spec.system_config.with_tpus(n_local), trace=False)
    for device, name, injector in zip(
        platform.devices, spec.device_names, spec.injectors or (None,) * n_local
    ):
        device.name = name  # global identity: snapshots merge key-for-key
        if injector is not None:
            device.fault_injector = injector
    # Admission already happened in the parent; the worker queue only
    # buffers the parent's shipments, so it must never fast-reject or
    # shed (the SLO policy stays so tiers still price deadlines/busy).
    config = replace(
        spec.config,
        max_queue_depth=max(spec.config.max_queue_depth * 2, 64),
        per_tenant_limit=None,
        shed_enabled=False,
    )
    tracer = SpanTracer(enabled=spec.trace)
    metrics = ServingMetrics(base_seed=spec.base_seed, worker_id=spec.worker_id + 1)
    server = TpuServer(platform, config, tracer=tracer, metrics=metrics)
    state = _WorkerState(spec, server, outbox)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def handle_inbox() -> None:
        try:
            while inbox.poll(0):
                msg = inbox.recv()
                kind = msg[0]
                if kind == "req":
                    for entry in msg[1]:
                        try:
                            request = decode_request(req_ring, entry)
                            fut = server.submit_nowait(
                                request, deadline_seconds=entry["deadline"]
                            )
                        except Exception as exc:
                            # A synchronous reject (QueueFull should be
                            # impossible at worker depth, decode bugs) must
                            # still produce a done, or the parent waits
                            # forever.
                            outbox.send(
                                ("done", entry["serve_id"], False, None, encode_error(exc))
                            )
                            continue
                        state.id_map[server._serve_seq] = entry["serve_id"]
                        fut.add_done_callback(
                            lambda f, gid=entry["serve_id"]: _on_future_done(
                                state, res_ring, gid, f
                            )
                        )
                elif kind == "rfree":
                    res_ring.free(msg[1])
                    _flush_parked(state, res_ring)
                elif kind == "warm":
                    _warm_plans(state, msg[1])
                elif kind == "snapshot":
                    snapbox.send(
                        ("snapshot", spec.worker_id, _snapshot_payload(state, host_t0, wall_t0))
                    )
                elif kind == "trace":
                    snapbox.send(
                        (
                            "trace",
                            spec.worker_id,
                            to_chrome_trace(
                                tracer,
                                pid=os.getpid(),
                                process_name=f"repro-worker{spec.worker_id}",
                                time_origin=wall_t0,
                            ),
                        )
                    )
                elif kind == "stop":
                    state.stopping = True
                    stop.set()
        except (EOFError, OSError):
            stop.set()  # parent went away

    server.pool.observer = lambda event, sid, dev: _forward_event(
        state, event, sid, dev
    )
    loop.add_reader(inbox.fileno(), handle_inbox)
    async with server:
        outbox.send(("ready", spec.worker_id, os.getpid()))
        await stop.wait()
        await server.drain()
    loop.remove_reader(inbox.fileno())
    req_ring.close()
    res_ring.close()


def worker_main(spec: WorkerSpec, inbox, outbox, snapbox) -> None:
    """Spawn entry point: run one data-plane worker to completion."""
    try:
        asyncio.run(_amain(spec, inbox, outbox, snapbox))
    except KeyboardInterrupt:
        pass
    finally:
        for conn in (inbox, outbox, snapbox):
            try:
                conn.close()
            except OSError:
                pass
