"""Wire format between the admission parent and data-plane workers.

Control messages are tiny picklable tuples over ``multiprocessing``
pipes; every ndarray (request operands, array-valued attrs, results)
travels as a :class:`~repro.mp.shm.ShmRing` ref instead — the pipes
carry offsets, never tensor bytes.

Parent → worker::

    ("req", [encoded request, ...])   one coalescible shipment
    ("warm", [plan blob, ...])        §3.3-serialized plans to pre-warm
    ("snapshot",)                     reply on the snapshot pipe
    ("trace",)                        reply with pid-tagged Chrome trace
    ("rfree", offset)                 result block consumed, reuse it
    ("stop",)                         drain, report, exit 0

Worker → parent::

    ("ready", worker_id, pid)
    ("done", serve_id, ok, result_ref | None, (errname, msg) | None)
    ("event", name, serve_id, device_index)   non-terminal pool events
    ("plans", [(signature, blob), ...])       newly captured plans
    ("snapshot", worker_id, payload)          on the snapshot pipe
    ("trace", worker_id, chrome_trace_dict)   on the snapshot pipe
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.edgetpu.device import FaultInjector
from repro.edgetpu.isa import Opcode
from repro.errors import (
    DeviceFailure,
    GPTPUError,
    QueueFull,
    RequestTimeout,
    ServingError,
    SilentDataCorruption,
)
from repro.mp.shm import ShmRing
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.serve.server import ServeConfig

#: Marker for an array-valued request attribute shipped through the ring.
SHM_REF = "__shmref__"

#: Terminal pool events the parent is authoritative for.  A worker never
#: forwards these: its local deliver/reject may be replayed on a sibling
#: after a crash requeue, and only the parent's once-only future resolve
#: defines the exactly-once outcome.
TERMINAL_EVENTS = frozenset({"deliver", "give-up", "timeout"})

#: Error classes a worker may surface across the boundary, by name.
ERROR_CLASSES = {
    cls.__name__: cls
    for cls in (
        GPTPUError,
        DeviceFailure,
        SilentDataCorruption,
        ServingError,
        QueueFull,
        RequestTimeout,
    )
}


def encode_error(exc: BaseException) -> Tuple[str, str]:
    """Portable (class name, message) form of a worker-side failure."""
    return type(exc).__name__, str(exc)


def decode_error(err: Tuple[str, str]) -> BaseException:
    """Rebuild a worker failure in the parent's exception hierarchy."""
    name, message = err
    cls = ERROR_CLASSES.get(name, ServingError)
    return cls(message)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs to build its device slice."""

    worker_id: int
    base_seed: int
    #: Picklable platform recipe; the worker instantiates its own slice.
    system_config: Any
    #: Global device names this worker owns (its local tpu0.. renamed).
    device_names: Tuple[str, ...]
    config: ServeConfig
    req_ring_name: str
    req_ring_capacity: int
    res_ring_name: str
    res_ring_capacity: int
    #: Armed fault injectors per local device (picklable plain objects),
    #: so a parent-side `platform.devices[i].inject_fault(...)` made
    #: before start — the conformance suites' contract — survives the
    #: process boundary.
    injectors: Tuple[Optional[FaultInjector], ...] = ()
    trace: bool = False


def encode_request(
    ring: ShmRing,
    serve_id: int,
    request: OperationRequest,
    deadline_remaining: Optional[float],
) -> Tuple[Dict[str, Any], List[int]]:
    """Stage one request's tensors into *ring*; returns (entry, offsets).

    The returned ``offsets`` are the parent-side blocks to free once the
    worker reports ``done`` for this serve id.  Staging is atomic: if any
    allocation fails (ring full mid-request), every block this call
    already reserved is freed before the exception propagates — the
    caller only ever rolls back whole requests, so a half-staged one
    must not leak ring space each time a parked shipment retries.
    """
    offsets: List[int] = []
    inputs = []
    attrs: Dict[str, Any] = {}
    try:
        for array in request.inputs:
            ref = ring.write_array(array)
            offsets.append(ref[0])
            inputs.append(ref)
        for key, value in request.attrs.items():
            if hasattr(value, "__array_interface__"):
                ref = ring.write_array(value)
                offsets.append(ref[0])
                attrs[key] = (SHM_REF,) + ref
            else:
                attrs[key] = value
    except Exception:
        for offset in offsets:
            ring.free(offset)
        raise
    entry = {
        "serve_id": serve_id,
        "opcode": request.opcode.name,
        "quant": request.quant.name,
        "tenant": request.tenant,
        "input_name": request.input_name,
        "output_name": request.output_name,
        "inputs": inputs,
        "attrs": attrs,
        "deadline": deadline_remaining,
    }
    return entry, offsets


def decode_request(ring: ShmRing, entry: Dict[str, Any]) -> OperationRequest:
    """Materialize a shipped request with zero-copy views into *ring*."""
    inputs = tuple(
        ring.read_view(offset, shape, dtype)
        for offset, _nbytes, shape, dtype in entry["inputs"]
    )
    attrs: Dict[str, Any] = {}
    for key, value in entry["attrs"].items():
        if isinstance(value, tuple) and value and value[0] == SHM_REF:
            _tag, offset, _nbytes, shape, dtype = value
            attrs[key] = ring.read_view(offset, shape, dtype)
        else:
            attrs[key] = value
    return OperationRequest(
        task_id=0,
        opcode=Opcode[entry["opcode"]],
        inputs=inputs,
        quant=QuantMode[entry["quant"]],
        attrs=attrs,
        input_name=entry["input_name"],
        output_name=entry["output_name"],
        tenant=entry["tenant"],
    )
