"""Serialized compiled plans: the §3.3 layout, extended.

A plan blob keeps the model binary format's structure (paper §3.3) so
the same tooling conventions apply:

1. a **120-byte header** whose first bytes carry a magic tag and format
   version and whose **last 4 bytes** are an unsigned little-endian
   integer — here the size of the *plan body* that follows;
2. the body: the lowering signature, the plan kind, the tiling
   geometry, one **instruction-group record** per template, the
   **integrity block** (checksum layout), and — for GEMM plans — the
   quantized model operand as §3.3 int8 row-major data plus its
   per-kernel-batch scales;
3. **little-endian** encoding throughout.

Parsing obeys the same contract the model parser does (and the fuzzer
enforces): every malformed blob is rejected with a typed error —
:class:`~repro.errors.PlanFormatError`, or
:class:`~repro.errors.ModelSizeMismatchError` when the header's size
field disagrees with the blob — and every accepted blob re-serializes
**byte-exactly**.  The parser consumes the body completely; trailing or
missing bytes are never guessed around.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List

import numpy as np

from repro.edgetpu.isa import Opcode
from repro.errors import ModelSizeMismatchError, PlanFormatError
from repro.plan.compiled import (
    KIND_GEMM,
    KIND_GENERIC,
    CompiledPlan,
    GemmGeometry,
    GemmModelBlock,
    InstrTemplate,
    IntegrityTemplate,
)

#: Header size, shared with the §3.3 model format.
PLAN_HEADER_SIZE = 120
#: Magic tag distinguishing plan blobs from model blobs ("GPTPUMDL").
PLAN_MAGIC = b"GPTPUPLN"
#: Plan format version we emit.
PLAN_FORMAT_VERSION = 1

_KIND_CODES = {KIND_GENERIC: 0, KIND_GEMM: 1}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}
_INTEGRITY_MODES = ("off", "abft", "vote")

#: Opnames a plan may legally carry.  Instruction records are device
#: instructions, so macro opcodes (host-level, no wire form — conv2D_nn)
#: are rejected at parse time; the Tensorizer never captures them either
#: (a macro lowers through its wire-op sub-request).
_WIRE_OPNAMES = frozenset(op.opname for op in Opcode if not op.is_macro)

#: Fixed-width tail of one instruction-group record past its strings:
#: data/model/out bytes (u64 ×3), count (u32), build+exec seconds (f64 ×2).
_TEMPLATE_FIXED = struct.Struct("<QQQIdd")
#: Integrity record tail: r0, r1, c0, c1 (u32 ×4).
_CHECK_FIXED = struct.Struct("<IIII")
#: Smallest possible encodings, used to bound count fields up front.
_TEMPLATE_MIN = 1 + 2 * 4 + _TEMPLATE_FIXED.size
_CHECK_MIN = 2 + _CHECK_FIXED.size


def plan_digest(blob: bytes) -> str:
    """Stable content hash of a serialized plan (ship-and-verify handle)."""
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------


def _enc_str(out: bytearray, text: str, width: str) -> None:
    raw = text.encode("utf-8")
    limit = 255 if width == "B" else 65535
    if len(raw) > limit:
        raise PlanFormatError(
            f"plan string too long to serialize ({len(raw)} bytes > {limit})"
        )
    out += struct.pack(f"<{width}", len(raw))
    out += raw


def _finite(value: float, what: str) -> float:
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise PlanFormatError(f"{what} must be finite and non-negative, got {value}")
    return value


def serialize_plan(plan: CompiledPlan) -> bytes:
    """Encode a :class:`CompiledPlan` into the versioned plan format."""
    if plan.kind not in _KIND_CODES:
        raise PlanFormatError(f"unknown plan kind {plan.kind!r}")
    if plan.integrity_mode not in _INTEGRITY_MODES:
        raise PlanFormatError(f"unknown integrity mode {plan.integrity_mode!r}")
    if plan.integrity_mode == "off" and plan.integrity:
        raise PlanFormatError("integrity checks recorded with mode 'off'")

    body = bytearray()
    _enc_str(body, plan.signature, "H")
    body += struct.pack("<B", _KIND_CODES[plan.kind])
    _enc_str(body, plan.opname, "B")
    body += struct.pack("<d", _finite(plan.cpu_seconds, "plan cpu_seconds"))

    # Geometry block: field count then u32 values (0 for generic plans).
    if plan.kind == KIND_GEMM:
        g = plan.geometry
        body += struct.pack(
            "<BIIIIII", 6, g.m, g.n, g.k, g.s, g.rows_per_chunk, g.batch
        )
    else:
        if plan.geometry is not None:
            raise PlanFormatError("generic plans carry no geometry block")
        body += struct.pack("<B", 0)

    # Instruction-group records.
    body += struct.pack("<I", len(plan.templates))
    for t in plan.templates:
        _enc_str(body, t.opname, "B")
        _enc_str(body, t.label, "H")
        _enc_str(body, t.group_key, "H")
        _enc_str(body, t.cache_key, "H")
        _enc_str(body, t.model_cache_key, "H")
        body += _TEMPLATE_FIXED.pack(
            t.data_bytes,
            t.model_bytes,
            t.out_bytes,
            t.count,
            _finite(t.model_build_seconds, "template model_build_seconds"),
            _finite(t.exec_seconds, "template exec_seconds"),
        )

    # Integrity block.
    _enc_str(body, plan.integrity_mode, "B")
    body += struct.pack("<I", len(plan.integrity))
    for check in plan.integrity:
        _enc_str(body, check.label, "H")
        body += _CHECK_FIXED.pack(
            check.rows[0], check.rows[1], check.cols[0], check.cols[1]
        )

    # Model block (GEMM plans with a captured SCALE-mode operand).
    model = plan.model
    if model is not None and plan.kind != KIND_GEMM:
        raise PlanFormatError("only gemm_conv2d plans carry a model block")
    if model is None:
        body += struct.pack("<B", 0)
    else:
        q_b = np.asarray(model.q_b)
        if q_b.ndim != 2:
            raise PlanFormatError(f"model block data must be 2-D, got {q_b.shape}")
        rows, cols = q_b.shape
        scales = np.asarray(model.col_scales, dtype="<f8")
        digest = bytes(model.b_digest)
        if len(digest) != 32:
            raise PlanFormatError("model block digest must be 32 bytes (sha256)")
        body += struct.pack("<B", 1)
        body += digest
        body += struct.pack("<dd", model.b_lo, model.b_hi)
        body += struct.pack("<III", rows, cols, scales.size)
        body += scales.tobytes()
        # §3.3 data section: binary 8-bit integers in row-major order.
        body += np.ascontiguousarray(q_b).astype(np.int8).tobytes()

    header = bytearray(PLAN_HEADER_SIZE)
    header[: len(PLAN_MAGIC)] = PLAN_MAGIC
    struct.pack_into("<I", header, len(PLAN_MAGIC), PLAN_FORMAT_VERSION)
    # §3.3: the last 4 header bytes are an unsigned size integer — for
    # plans, the size of the whole body.
    struct.pack_into("<I", header, PLAN_HEADER_SIZE - 4, len(body))
    return bytes(header) + bytes(body)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------


class _Reader:
    """Cursor over the plan body; every read is bounds-checked."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: memoryview) -> None:
        self.buf = buf
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.buf) - self.pos

    def take(self, n: int) -> memoryview:
        if n < 0 or n > self.remaining:
            raise PlanFormatError(
                f"plan body truncated: needed {n} bytes, {self.remaining} left"
            )
        out = self.buf[self.pos : self.pos + n]
        self.pos += n
        return out

    def unpack(self, st: struct.Struct):
        return st.unpack(self.take(st.size).tobytes())

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "little")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "little")

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8).tobytes())[0]

    def string(self, width: str) -> str:
        length = self.u8() if width == "B" else self.u16()
        raw = self.take(length).tobytes()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise PlanFormatError(f"plan string is not valid UTF-8: {exc}") from None


def _check_finite(value: float, what: str) -> float:
    if not np.isfinite(value) or value < 0:
        raise PlanFormatError(f"{what} must be finite and non-negative, got {value}")
    return float(value)


def parse_plan(blob: bytes) -> CompiledPlan:
    """Decode a plan blob, validating every structural invariant."""
    if len(blob) < PLAN_HEADER_SIZE:
        raise PlanFormatError(
            f"blob too short to be a plan ({len(blob)} bytes < "
            f"{PLAN_HEADER_SIZE} header minimum)"
        )
    if bytes(blob[: len(PLAN_MAGIC)]) != PLAN_MAGIC:
        raise PlanFormatError("bad magic: not a compiled-plan blob")
    (version,) = struct.unpack_from("<I", blob, len(PLAN_MAGIC))
    if version != PLAN_FORMAT_VERSION:
        raise PlanFormatError(f"unsupported plan format version {version}")
    if any(blob[len(PLAN_MAGIC) + 4 : PLAN_HEADER_SIZE - 4]):
        # Same rule as the model header: undocumented bytes are emitted
        # as zeros; nonzero bytes would be dropped on re-serialization,
        # so reject rather than guess.
        raise PlanFormatError("reserved plan header bytes must be zero")
    (body_size,) = struct.unpack_from("<I", blob, PLAN_HEADER_SIZE - 4)
    actual = len(blob) - PLAN_HEADER_SIZE
    if body_size != actual:
        raise ModelSizeMismatchError(
            f"plan header declares a {body_size}-byte body but the blob "
            f"holds {actual} bytes past the header",
            declared=body_size,
            actual=actual,
        )

    r = _Reader(memoryview(blob)[PLAN_HEADER_SIZE:])
    signature = r.string("H")
    kind_code = r.u8()
    if kind_code not in _KIND_NAMES:
        raise PlanFormatError(f"unknown plan kind code {kind_code}")
    kind = _KIND_NAMES[kind_code]
    opname = r.string("B")
    if not opname:
        raise PlanFormatError("plan opname must be non-empty")
    if opname not in _WIRE_OPNAMES:
        raise PlanFormatError(
            f"plan opname {opname!r} is not an executable device opcode"
        )
    cpu_seconds = _check_finite(r.f64(), "plan cpu_seconds")

    geom_fields = r.u8()
    geometry = None
    if kind == KIND_GEMM:
        if geom_fields != 6:
            raise PlanFormatError(
                f"gemm_conv2d plans carry 6 geometry fields, got {geom_fields}"
            )
        m, n, k, s, rows_per_chunk, batch = (r.u32() for _ in range(6))
        if min(m, n, k, s, rows_per_chunk, batch) < 1:
            raise PlanFormatError("geometry fields must be positive")
        if s * s < n or (s - 1) * (s - 1) >= n:
            raise PlanFormatError(
                f"geometry stride {s} is not ceil(sqrt({n})) (§7.1.2)"
            )
        geometry = GemmGeometry(
            m=m, n=n, k=k, s=s, rows_per_chunk=rows_per_chunk, batch=batch
        )
    elif geom_fields != 0:
        raise PlanFormatError(
            f"generic plans carry no geometry fields, got {geom_fields}"
        )

    n_templates = r.u32()
    if n_templates * _TEMPLATE_MIN > r.remaining:
        raise PlanFormatError(
            f"instruction-record count {n_templates} exceeds the plan body"
        )
    templates: List[InstrTemplate] = []
    for _ in range(n_templates):
        t_opname = r.string("B")
        label = r.string("H")
        group_key = r.string("H")
        cache_key = r.string("H")
        model_cache_key = r.string("H")
        data_bytes, model_bytes, out_bytes, count, build_s, exec_s = r.unpack(
            _TEMPLATE_FIXED
        )
        if not t_opname:
            raise PlanFormatError("instruction record opname must be non-empty")
        if t_opname not in _WIRE_OPNAMES:
            raise PlanFormatError(
                f"instruction record opname {t_opname!r} is not an "
                f"executable device opcode"
            )
        if count < 1:
            raise PlanFormatError(f"instruction record count must be >= 1, got {count}")
        templates.append(
            InstrTemplate(
                opname=t_opname,
                label=label,
                group_key=group_key,
                cache_key=cache_key,
                model_cache_key=model_cache_key,
                data_bytes=data_bytes,
                model_bytes=model_bytes,
                out_bytes=out_bytes,
                count=count,
                model_build_seconds=_check_finite(
                    build_s, "template model_build_seconds"
                ),
                exec_seconds=_check_finite(exec_s, "template exec_seconds"),
            )
        )

    integrity_mode = r.string("B")
    if integrity_mode not in _INTEGRITY_MODES:
        raise PlanFormatError(f"unknown integrity mode {integrity_mode!r}")
    n_checks = r.u32()
    if integrity_mode == "off" and n_checks:
        raise PlanFormatError("integrity checks present with mode 'off'")
    if n_checks * _CHECK_MIN > r.remaining:
        raise PlanFormatError(f"integrity-check count {n_checks} exceeds the plan body")
    checks: List[IntegrityTemplate] = []
    for _ in range(n_checks):
        label = r.string("H")
        r0, r1, c0, c1 = r.unpack(_CHECK_FIXED)
        if r1 <= r0 or c1 <= c0:
            raise PlanFormatError(
                f"integrity check {label!r} has an empty tile ({r0},{r1})x({c0},{c1})"
            )
        checks.append(IntegrityTemplate(label=label, rows=(r0, r1), cols=(c0, c1)))

    model = None
    model_flag = r.u8()
    if model_flag not in (0, 1):
        raise PlanFormatError(f"model-block flag must be 0 or 1, got {model_flag}")
    if model_flag:
        if kind != KIND_GEMM:
            raise PlanFormatError("only gemm_conv2d plans carry a model block")
        digest = r.take(32).tobytes()
        b_lo = r.f64()
        b_hi = r.f64()
        if not (np.isfinite(b_lo) and np.isfinite(b_hi)) or b_lo > b_hi:
            raise PlanFormatError(
                f"model block range [{b_lo}, {b_hi}] is not a finite interval"
            )
        rows, cols, n_scales = (r.u32() for _ in range(3))
        if rows != geometry.n or cols != geometry.k:
            raise PlanFormatError(
                f"model block is {rows}x{cols} but the geometry wants "
                f"{geometry.n}x{geometry.k}"
            )
        expected_scales = len(geometry.col_starts)
        if n_scales != expected_scales:
            raise PlanFormatError(
                f"model block has {n_scales} scales, geometry wants {expected_scales}"
            )
        scales = np.frombuffer(r.take(8 * n_scales), dtype="<f8").astype(np.float64)
        if not np.all(np.isfinite(scales)) or np.any(scales <= 0):
            raise PlanFormatError("model block scales must be finite and positive")
        data = np.frombuffer(r.take(rows * cols), dtype=np.int8)
        q_b = data.reshape(rows, cols).astype(np.float32)
        model = GemmModelBlock(
            q_b=q_b,
            col_scales=scales,
            b_lo=float(b_lo),
            b_hi=float(b_hi),
            b_digest=digest,
            b_ref=None,
        )

    if r.remaining:
        raise PlanFormatError(
            f"plan body has {r.remaining} undeclared trailing bytes"
        )
    return CompiledPlan(
        signature=signature,
        kind=kind,
        opname=opname,
        cpu_seconds=cpu_seconds,
        templates=templates,
        integrity_mode=integrity_mode,
        integrity=checks,
        geometry=geometry,
        model=model,
    )
