"""Compiled lowering plans: the AOT capture half of the Tensorizer.

A :class:`CompiledPlan` freezes everything about lowering one operation
that does **not** depend on the operand *values*: the tiling geometry,
the instruction-group records (with the data-source and task identity
left as placeholders), the integrity-check layout, and — for conv2D
GEMMs — the quantized model operand itself.  Replaying a plan therefore
only needs per-request input quantization and binding the templates to
the request's identity; re-tiling, instruction costing, and model
builds are amortized into the one capture (the executorch-style
delegation split, ROADMAP item 1).

What stays per-request by construction: input quant params (they are
functions of the data), measured output bounds, and the requantize
arithmetic — so a replayed result is bit-identical to fresh lowering
(``repro conformance --suite plans`` enforces it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.runtime.opqueue import LoweredInstr

#: Placeholder tokens substituted at bind time.
SRC_TOKEN = "{src}"
TASK_TOKEN = "{task}"
MODEL_SRC_TOKEN = "{msrc}"

#: Plan kinds: a dedicated fast-replay path exists for conv2D GEMMs;
#: every other vectorized rule replays generically (the rule re-runs
#: with model builds amortized to zero).
KIND_GENERIC = "generic"
KIND_GEMM = "gemm_conv2d"
KINDS = (KIND_GENERIC, KIND_GEMM)


@dataclass(frozen=True)
class InstrTemplate:
    """One instruction-group record: a :class:`LoweredInstr` minus its
    per-request identity (source buffer, task id, model source)."""

    opname: str
    label: str
    #: Key strings with ``{src}`` / ``{task}`` / ``{msrc}`` placeholders.
    group_key: str
    cache_key: str
    model_cache_key: str
    data_bytes: int
    model_bytes: int
    out_bytes: int
    count: int
    #: Capture-time model-build cost; a replay binds 0.0 (the §6.2.3
    #: build happened once, at capture — that is the point of the plan).
    model_build_seconds: float
    exec_seconds: float

    def bind(
        self,
        opcode,
        task_id: int,
        source: str,
        model_source: str,
        *,
        fresh: bool,
    ) -> LoweredInstr:
        """Instantiate the template for one request.

        ``fresh=True`` charges the capture-time model-build seconds (the
        miss that built the models); ``fresh=False`` is a warm replay and
        the instruction ships with an already-built model.
        """
        task = str(task_id)
        sub = lambda s: (
            s.replace(SRC_TOKEN, source)
            .replace(TASK_TOKEN, task)
            .replace(MODEL_SRC_TOKEN, model_source)
        )
        return LoweredInstr(
            opcode=opcode,
            task_id=task_id,
            group_key=sub(self.group_key),
            cache_key=sub(self.cache_key),
            data_bytes=self.data_bytes,
            model_bytes=self.model_bytes,
            model_build_seconds=self.model_build_seconds if fresh else 0.0,
            exec_seconds=self.exec_seconds,
            out_bytes=self.out_bytes,
            label=self.label,
            model_cache_key=sub(self.model_cache_key),
            count=self.count,
        )


@dataclass(frozen=True)
class IntegrityTemplate:
    """Checksum-plan layout for one GEMM piece (values are per-request)."""

    label: str
    rows: Tuple[int, int]
    cols: Tuple[int, int]


@dataclass(frozen=True)
class GemmGeometry:
    """The §7.1.2 conv2D-GEMM partitioning, captured once."""

    m: int
    n: int
    k: int
    #: Stride: ceil(sqrt(n)) — rows reshape into s×s sub-matrices.
    s: int
    rows_per_chunk: int
    batch: int

    @property
    def row_starts(self) -> List[int]:
        return list(range(0, self.m, self.rows_per_chunk))

    @property
    def col_starts(self) -> List[int]:
        return list(range(0, self.k, self.batch))


@dataclass
class GemmModelBlock:
    """The quantized model operand cached with a GEMM plan (SCALE mode).

    ``q_b`` holds the int8-valued (float32-stored) quantized weights —
    exactly the bytes §3.3 would ship to the device — plus the per
    kernel-batch scales and the operand's value range.  ``b_ref`` is the
    capture-time array for a fast identity check; it is not serialized
    (a deserialized plan matches by value instead).
    """

    q_b: np.ndarray  # float32 (n, k), integer-valued in [-127, 127]
    col_scales: np.ndarray  # float64, one per kernel batch
    b_lo: float
    b_hi: float
    b_digest: bytes  # sha256 of the normalized operand's raw bytes
    b_ref: Optional[np.ndarray] = None

    def matches(self, b: np.ndarray) -> bool:
        """Is *b* the operand this block quantized?  Identity first (the
        serving hot path shares one weight matrix object), then the
        capture-time content digest.

        The digest — never value equality against ``b_ref`` — is the
        authoritative fallback: ``b_ref`` may be a zero-copy view into a
        shared-memory ring (the multi-process data plane), and once the
        producer recycles that block, ``b_ref`` silently aliases a
        *newer* request's bytes.  Comparing ``b`` against those bytes
        would match any operand that happens to live at the same offset;
        the digest was taken from the operand actually quantized and
        cannot alias.
        """
        if self.b_ref is not None and b is self.b_ref:
            return True
        if b.shape != self.q_b.shape:
            return False
        return hashlib.sha256(b.tobytes()).digest() == self.b_digest


def model_block_for(
    b: np.ndarray, q_b: np.ndarray, col_scales: np.ndarray, b_lo: float, b_hi: float
) -> GemmModelBlock:
    """Build a model block from a just-quantized operand."""
    return GemmModelBlock(
        q_b=q_b,
        col_scales=np.asarray(col_scales, dtype=np.float64).copy(),
        b_lo=float(b_lo),
        b_hi=float(b_hi),
        b_digest=hashlib.sha256(b.tobytes()).digest(),
        b_ref=b,
    )


@dataclass
class CompiledPlan:
    """Everything lowering derived that survives across requests."""

    signature: str
    kind: str
    opname: str
    #: Host data-transformation cost (§7.1.3), a pure function of shape.
    cpu_seconds: float
    templates: List[InstrTemplate] = field(default_factory=list)
    integrity_mode: str = "off"
    integrity: List[IntegrityTemplate] = field(default_factory=list)
    geometry: Optional[GemmGeometry] = None
    #: Cached quantized model operand (GEMM plans, SCALE quant only —
    #: GLOBAL scales depend on the data operand too).
    model: Optional[GemmModelBlock] = None
    #: Lifetime replay count for this plan (runtime-only, not serialized).
    replays: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown plan kind {self.kind!r}")
        if self.kind == KIND_GEMM and self.geometry is None:
            raise ValueError("a gemm_conv2d plan needs its geometry")

    @property
    def instruction_count(self) -> int:
        return len(self.templates)

    def without_runtime_state(self) -> "CompiledPlan":
        """A copy safe to compare against a deserialized plan."""
        model = self.model
        if model is not None:
            model = replace(model, b_ref=None)
        return CompiledPlan(
            signature=self.signature,
            kind=self.kind,
            opname=self.opname,
            cpu_seconds=self.cpu_seconds,
            templates=list(self.templates),
            integrity_mode=self.integrity_mode,
            integrity=list(self.integrity),
            geometry=self.geometry,
            model=model,
            replays=0,
        )
