"""repro.plan — AOT compiled-plan capture, caching, and serialization.

The executorch-style lowering/delegation split (ROADMAP item 1): the
Tensorizer *captures* the data-independent outcome of lowering one
operation into a :class:`CompiledPlan` (tiling geometry, instruction
templates, integrity layout, and — for GEMMs — the quantized model
operand), a bounded-LRU :class:`PlanCache` keyed by the full lowering
signature holds the plans, and replay *binds* a plan to each new
request with only per-request input quantization left on the host.

Plans round-trip to bytes through :func:`serialize_plan` /
:func:`parse_plan` — a versioned extension of the §3.3 model binary
layout — so they can be persisted, content-hashed
(:func:`plan_digest`), shipped between processes (ROADMAP item 2), or
segmented across devices (item 3).
"""

from repro.plan.cache import DEFAULT_MAX_ENTRIES, PlanCache, plan_signature
from repro.plan.compiled import (
    KIND_GEMM,
    KIND_GENERIC,
    CompiledPlan,
    GemmGeometry,
    GemmModelBlock,
    InstrTemplate,
    IntegrityTemplate,
    model_block_for,
)
from repro.plan.serial import (
    PLAN_FORMAT_VERSION,
    PLAN_HEADER_SIZE,
    PLAN_MAGIC,
    parse_plan,
    plan_digest,
    serialize_plan,
)

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "KIND_GEMM",
    "KIND_GENERIC",
    "PLAN_FORMAT_VERSION",
    "PLAN_HEADER_SIZE",
    "PLAN_MAGIC",
    "CompiledPlan",
    "GemmGeometry",
    "GemmModelBlock",
    "InstrTemplate",
    "IntegrityTemplate",
    "PlanCache",
    "model_block_for",
    "parse_plan",
    "plan_digest",
    "plan_signature",
    "serialize_plan",
]
