"""Bounded LRU cache of :class:`~repro.plan.compiled.CompiledPlan`\\ s.

The key is the **full lowering signature**: opcode, operand shapes and
dtypes, quantization mode, every lowering-relevant request attribute,
and digests of the :class:`~repro.runtime.tensorizer.TensorizerOptions`
and :class:`~repro.config.EdgeTPUConfig` in force.  Two requests with
equal signatures lower to the same geometry, the same instruction
templates, and the same integrity layout — only the data-dependent
values (input scales, measured output bounds, results) differ, and
those are recomputed per request at bind time.

The coalescing compatibility key is by construction a sub-key of this
signature (same opcode/shape/quant/`gemm_chunks` + shared B), so one
plan serves a whole coalesced group.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro.plan.compiled import CompiledPlan

#: Default cache bound; a serving mix rarely has more live shapes.
DEFAULT_MAX_ENTRIES = 128


def _dataclass_digest(obj) -> str:
    """Stable one-line digest of a frozen config dataclass."""
    pairs = sorted(dataclasses.asdict(obj).items())
    return ",".join(f"{k}={v!r}" for k, v in pairs)


def _attr_token(value) -> str:
    """Canonical signature token for one request attribute value.

    ``repr`` alone is unsafe for array-valued attributes: NumPy elides
    large arrays with ``...``, so two different per-channel quant vectors
    (e.g. a ``channel_scales`` override on a wide conv2D_nn layer) could
    collapse to one ambiguous token and replay the wrong plan.  Arrays
    are digested over their full byte content instead; nested sequences
    are canonicalized recursively so tuples and lists of the same values
    produce one token.
    """
    if isinstance(value, np.ndarray):
        payload = np.ascontiguousarray(value).tobytes()
        digest = hashlib.blake2b(payload, digest_size=8).hexdigest()
        return f"ndarray{tuple(value.shape)}:{value.dtype.str}:{digest}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(_attr_token(v) for v in value) + ")"
    return repr(value)


def plan_signature(request, options, tpu_config) -> str:
    """The canonical lowering signature for one request.

    Deliberately data-independent: names (``input_name`` and friends)
    and operand *values* are excluded — they are bound per request.
    Every request attribute is included, because attributes steer
    lowering (``gemm``, ``gemm_chunks``, ``crop_box``, ``ext_shape``...).
    """
    shapes = ";".join(
        f"{tuple(x.shape)}:{x.dtype.str}" for x in request.inputs
    )
    attrs = ";".join(
        f"{key}={_attr_token(request.attrs[key])}" for key in sorted(request.attrs)
    )
    return (
        f"plan-v1|op={request.opcode.opname}|quant={request.quant.name}"
        f"|shapes={shapes}|attrs={attrs}"
        f"|opts={_dataclass_digest(options)}|cfg={_dataclass_digest(tpu_config)}"
    )


class PlanCache:
    """Bounded LRU over compiled plans, with lifetime counters."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError(f"plan cache needs a positive bound, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, CompiledPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0
        #: Requests bound from a cached plan (a coalesced group counts
        #: one bind per member request).
        self.binds = 0

    # -- lookup ---------------------------------------------------------

    def get(self, signature: str) -> Optional[CompiledPlan]:
        """Return the cached plan (refreshing recency) or None."""
        plan = self._entries.get(signature)
        if plan is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(signature)
        return plan

    def peek(self, signature: str) -> Optional[CompiledPlan]:
        """Lookup without touching recency or counters (introspection)."""
        return self._entries.get(signature)

    def put(self, signature: str, plan: CompiledPlan) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry at capacity."""
        if signature in self._entries:
            self._entries.move_to_end(signature)
        self._entries[signature] = plan
        self.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def note_bind(self, requests: int = 1) -> None:
        """Record *requests* bound from cached plans."""
        self.binds += int(requests)

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, signature: str) -> bool:
        return signature in self._entries

    def plans(self) -> list:
        """The cached plans, LRU → MRU order (introspection/persistence)."""
        return list(self._entries.values())

    def clear(self) -> None:
        """Drop every entry (counters keep their lifetime values)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def counters(self) -> Dict[str, float]:
        """Flat counter mapping for the telemetry CounterRegistry."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "binds": self.binds,
            "entries": len(self._entries),
            "hit_rate": self.hit_rate,
        }
