"""One snapshot over every counter family in the stack.

The repo grew three disjoint counter surfaces — ``TensorizerStats``
(lowering), ``ServingMetrics`` (serving outcomes), and the on-chip
memory model's hit/miss/eviction counts — each with its own shape and
access path.  :class:`CounterRegistry` unifies them behind *named
sources*: a source is any zero-argument callable returning a flat
mapping of counter name to number, sampled lazily at snapshot time so
registration costs nothing on hot paths.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, Mapping

CounterSource = Callable[[], Mapping[str, float]]


class CounterRegistry:
    """Named, lazily-sampled counter sources under one snapshot."""

    def __init__(self) -> None:
        self._sources: Dict[str, CounterSource] = {}

    def register(self, name: str, source: CounterSource) -> None:
        """Add one source; names are unique per registry."""
        if not name:
            raise ValueError("counter source needs a non-empty name")
        if name in self._sources:
            raise ValueError(f"counter source {name!r} already registered")
        if not callable(source):
            raise TypeError(f"counter source {name!r} must be callable")
        self._sources[name] = source

    def unregister(self, name: str) -> None:
        """Remove one source."""
        del self._sources[name]

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def __len__(self) -> int:
        return len(self._sources)

    def __iter__(self) -> Iterator[str]:
        return iter(self._sources)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Sample every source: ``{source: {counter: value}}``."""
        return {name: dict(source()) for name, source in self._sources.items()}

    def flat(self) -> Dict[str, float]:
        """Dotted one-level form: ``{"source.counter": value}``."""
        out: Dict[str, float] = {}
        for name, counters in self.snapshot().items():
            for key, value in counters.items():
                out[f"{name}.{key}"] = value
        return out


# -- source adapters ----------------------------------------------------


def tensorizer_counters(stats) -> CounterSource:
    """Source over a :class:`~repro.runtime.tensorizer.TensorizerStats`."""
    return lambda: dataclasses.asdict(stats)


def memory_counters(memory) -> CounterSource:
    """Source over an :class:`~repro.edgetpu.memory.OnChipMemory`."""

    def sample() -> Dict[str, float]:
        return {
            "hits": memory.hits,
            "misses": memory.misses,
            "evictions": memory.evictions,
            "used_bytes": memory.used_bytes,
            "regions": len(memory),
        }

    return sample


def plan_counters(cache) -> CounterSource:
    """Source over a :class:`~repro.plan.cache.PlanCache` (hits, misses,
    evictions, binds, live entries, hit rate)."""
    return cache.counters


def serving_counters(metrics) -> CounterSource:
    """Source over a :class:`~repro.serve.metrics.ServingMetrics`."""
    return metrics.counters


def device_counters(device) -> CounterSource:
    """Source over an :class:`~repro.edgetpu.device.EdgeTPUDevice`.

    Lifetime execution counters, including ``saturated_values`` — the
    total output values clipped to the int8 rails across every packet
    the device executed (surfaced per §6.2.2's accuracy/saturation
    trade-off).
    """

    def sample() -> Dict[str, float]:
        return {
            "instructions_executed": device.instructions_executed,
            "busy_seconds": device.busy_seconds,
            "saturated_values": device.saturated_values,
        }

    return sample
