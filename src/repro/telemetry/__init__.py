"""repro.telemetry — span tracing, unified counters, trace export.

A zero-dependency, disabled-by-default tracer threaded through the
whole stack (OPQ submit → Tensorizer lowering phases → scheduler group
formation → DevicePool execution), with every span carrying host wall
time *and* modeled device time; a :class:`CounterRegistry` unifying the
scattered counter families; and Chrome-trace/Perfetto + attribution
exporters.  See docs/telemetry.md.

Components resolve the tracer at construction from the module-level
default (:func:`get_tracer`), so ``repro trace`` — or a test calling
:func:`set_tracer` — observes everything built afterwards without any
plumbing.
"""

from repro.telemetry.counters import (
    CounterRegistry,
    device_counters,
    memory_counters,
    plan_counters,
    serving_counters,
    tensorizer_counters,
)
from repro.telemetry.export import (
    attribution,
    format_attribution,
    merge_chrome_traces,
    save_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.tracer import NULL_SPAN, Span, SpanTracer

_default_tracer = SpanTracer()


def get_tracer() -> SpanTracer:
    """The process-default tracer (disabled until someone enables it)."""
    return _default_tracer


def set_tracer(tracer: SpanTracer) -> SpanTracer:
    """Swap the process-default tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


__all__ = [
    "NULL_SPAN",
    "CounterRegistry",
    "Span",
    "SpanTracer",
    "attribution",
    "device_counters",
    "format_attribution",
    "get_tracer",
    "memory_counters",
    "plan_counters",
    "merge_chrome_traces",
    "save_chrome_trace",
    "serving_counters",
    "set_tracer",
    "tensorizer_counters",
    "to_chrome_trace",
    "validate_chrome_trace",
]
