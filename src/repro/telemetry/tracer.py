"""Span-based host tracing for the lowering/serving stack.

One :class:`SpanTracer` records *spans* — named, categorized intervals
on a logical *track* (a device, the tensorizer, the router...).  Every
span carries two time bases: host wall time (the tracer's clock) and
*modeled device seconds* accumulated via :meth:`Span.add_device_seconds`,
so a trace can be reconciled against the timing model's own ledgers
(``ServingMetrics.busy_by_device``, ``Timeline.busy_by_unit``).

The tracer is **disabled by default** and the disabled path allocates
nothing: :meth:`SpanTracer.begin` returns the shared :data:`NULL_SPAN`
singleton, whose every method is a no-op.  Instrumented hot paths pay
one attribute read and one ``if`` per call — see
``tests/telemetry/test_overhead.py`` for the enforcement.

Two usage styles::

    with tracer.span("lower:conv2D", cat="lower") as sp:
        ...
        sp.add_device_seconds(op.total_exec_seconds)

    sp = tracer.begin("exec", cat="device", track="tpu0")
    ...
    tracer.end(sp)

Zero dependencies beyond the standard library; asyncio-friendly (spans
from concurrent tasks land on distinct tracks and may overlap freely).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional


class Span:
    """One traced interval (or instant) on a track."""

    __slots__ = ("name", "cat", "track", "start", "end", "device_seconds", "args", "phase")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        args: Optional[dict] = None,
        phase: str = "X",
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.device_seconds = 0.0
        self.args: dict = args or {}
        self.phase = phase  # "X" (complete) or "i" (instant)

    @property
    def duration(self) -> float:
        """Host wall seconds (0.0 while open and for instants)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **args: object) -> "Span":
        """Attach arguments; returns self for chaining."""
        self.args.update(args)
        return self

    def add_device_seconds(self, seconds: float) -> "Span":
        """Accumulate modeled device time onto this span."""
        self.device_seconds += seconds
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.cat!r}, track={self.track!r}, "
            f"dur={self.duration:.6g}s, device={self.device_seconds:.6g}s)"
        )


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    name = ""
    cat = ""
    track = ""
    phase = "X"
    start = 0.0
    end = 0.0
    duration = 0.0
    device_seconds = 0.0
    args: dict = {}

    def set(self, **args: object) -> "_NullSpan":
        return self

    def add_device_seconds(self, seconds: float) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: Singleton returned by every begin/span call on a disabled tracer.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context-manager shim binding an open span to its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer.end(self._span)
        return False


class SpanTracer:
    """Collects spans against an injectable host clock.

    Disabled by default; :meth:`enable` turns recording on.  The clock
    is injectable for the same reason the serving clocks are
    (deterministic tests) and defaults to ``time.perf_counter``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = False,
    ) -> None:
        self.enabled = enabled
        self._clock = clock
        self._spans: List[Span] = []
        #: Lifetime count of real (non-null) spans begun.
        self.spans_created = 0
        #: Lifetime count of instant events recorded.
        self.instants_created = 0

    # -- control --------------------------------------------------------

    def enable(self) -> "SpanTracer":
        """Turn recording on; returns self."""
        self.enabled = True
        return self

    def disable(self) -> "SpanTracer":
        """Turn recording off (already-open spans still record on end)."""
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop every finished span and reset the creation counters."""
        self._spans.clear()
        self.spans_created = 0
        self.instants_created = 0

    # -- recording ------------------------------------------------------

    def begin(self, name: str, cat: str = "", track: str = "host", **args: object):
        """Open a span (explicit API); pair with :meth:`end`.

        Returns :data:`NULL_SPAN` when disabled — callers never branch.
        """
        if not self.enabled:
            return NULL_SPAN
        self.spans_created += 1
        return Span(name, cat, track, self._clock(), args or None)

    def end(self, span) -> None:
        """Close *span* and record it (no-op for the null span)."""
        if span is NULL_SPAN or span.end is not None:
            return
        span.end = self._clock()
        self._spans.append(span)

    def span(self, name: str, cat: str = "", track: str = "host", **args: object):
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        if not self.enabled:
            return NULL_SPAN
        self.spans_created += 1
        return _SpanContext(self, Span(name, cat, track, self._clock(), args or None))

    def instant(self, name: str, cat: str = "", track: str = "host", **args: object) -> None:
        """Record a zero-duration event (lifecycle transitions)."""
        if not self.enabled:
            return
        self.instants_created += 1
        now = self._clock()
        span = Span(name, cat, track, now, args or None, phase="i")
        span.end = now
        self._spans.append(span)

    # -- inspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order."""
        return list(self._spans)

    def device_seconds_by_track(self, cat: Optional[str] = None) -> Dict[str, float]:
        """Total modeled device seconds per track (optionally one cat).

        This is the reconciliation hook: summed over the ``device`` cat
        it must equal ``ServingMetrics.busy_by_device`` for the same run.
        """
        totals: Dict[str, float] = {}
        for span in self._spans:
            if cat is not None and span.cat != cat:
                continue
            if span.device_seconds:
                totals[span.track] = totals.get(span.track, 0.0) + span.device_seconds
        return totals
