"""Exporters for :class:`~repro.telemetry.tracer.SpanTracer` traces.

Two consumers:

* **Chrome trace / Perfetto** — :func:`to_chrome_trace` emits the JSON
  object format (``{"traceEvents": [...]}``) with one ``pid`` for the
  host process and one ``tid`` lane per span track.  Timestamps are
  microseconds relative to the first span, ``"X"`` complete events for
  spans and ``"i"`` instants for lifecycle events; every event's
  ``args`` carries its modeled ``device_seconds``.  Load the file at
  https://ui.perfetto.dev or ``chrome://tracing``.
* **Attribution table** — :func:`attribution` aggregates host and
  modeled device seconds per ``(cat, name)``; ``repro profile`` and
  ``repro trace`` print it via :func:`format_attribution`.

:func:`validate_chrome_trace` is the schema gate CI runs on emitted
artifacts — shape checks only, no external JSON-schema dependency.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.tracer import SpanTracer

#: Event phases we emit and accept ("M" = metadata).
_VALID_PHASES = {"X", "B", "E", "i", "I", "M", "C"}


def to_chrome_trace(
    tracer: SpanTracer,
    counters: Optional[dict] = None,
    *,
    pid: int = 0,
    process_name: str = "repro-host",
    time_origin: Optional[float] = None,
) -> dict:
    """Render a tracer's spans as a Chrome-trace JSON object.

    ``pid`` / ``process_name`` tag every event with the emitting process
    (the multi-process server exports one trace per worker, pid-tagged,
    and merges them with :func:`merge_chrome_traces` so Perfetto shows
    one process lane per worker).  ``time_origin`` pins the shared zero
    instant for such merges; by default each trace is rebased to its own
    first span.
    """
    spans = tracer.spans
    t0 = (
        time_origin
        if time_origin is not None
        else min((s.start for s in spans), default=0.0)
    )
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": "host",
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.cat or "span",
            "ph": span.phase,
            "ts": max((span.start - t0) * 1e6, 0.0),
            "pid": pid,
            "tid": span.track,
            "args": dict(span.args, device_seconds=span.device_seconds),
        }
        if span.phase == "X":
            event["dur"] = span.duration * 1e6
        else:
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if counters is not None:
        payload["otherData"] = {"counters": counters}
    return payload


def merge_chrome_traces(traces: List[dict]) -> dict:
    """Concatenate pid-tagged Chrome traces into one loadable payload.

    Each input is a :func:`to_chrome_trace` object (typically one per
    process, distinct ``pid``).  Events concatenate in order; the first
    trace's ``otherData`` wins, with each later trace's counters kept
    under its metadata process name.
    """
    events: List[dict] = []
    other: dict = {}
    for trace in traces:
        events.extend(trace.get("traceEvents", []))
        extra = trace.get("otherData")
        if extra and not other:
            other = dict(extra)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if other:
        payload["otherData"] = other
    return payload


def save_chrome_trace(
    tracer: SpanTracer, path: str, counters: Optional[dict] = None
) -> str:
    """Write :func:`to_chrome_trace` JSON to *path*; returns *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer, counters), fh, indent=1)
    return path


def validate_chrome_trace(payload: Union[dict, list, str]) -> List[str]:
    """Schema-check a Chrome-trace payload (dict, list, or file path).

    Returns a list of human-readable problems — empty means valid.
    Accepts both the JSON-object format and a bare event array (the two
    shapes the Trace Event format defines).
    """
    if isinstance(payload, str):
        try:
            with open(payload, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            return [f"unreadable trace file: {exc}"]
    problems: List[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["object-format trace must carry a 'traceEvents' list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"trace must be a JSON object or array, got {type(payload).__name__}"]
    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or empty 'name'")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where} ({name!r}): bad phase {ph!r}")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"{where} ({name!r}): missing pid/tid")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where} ({name!r}): bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where} ({name!r}): 'X' event needs dur >= 0, got {dur!r}")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where} ({name!r}): 'args' must be an object")
    return problems


def attribution(tracer: SpanTracer) -> List[dict]:
    """Per-phase attribution rows, heaviest host time first.

    One row per ``(cat, name)``: span count, total host wall seconds,
    total modeled device seconds.  Instants count as zero-duration rows
    so lifecycle events (retries, breaker opens) still show up.
    """
    totals: Dict[Tuple[str, str], List[float]] = {}
    for span in tracer:
        key = (span.cat or "span", span.name)
        row = totals.setdefault(key, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += span.duration
        row[2] += span.device_seconds
    rows = [
        {
            "cat": cat,
            "name": name,
            "count": int(count),
            "host_seconds": host,
            "device_seconds": device,
        }
        for (cat, name), (count, host, device) in totals.items()
    ]
    rows.sort(key=lambda r: (-r["host_seconds"], r["cat"], r["name"]))
    return rows


def format_attribution(tracer: SpanTracer, title: str = "Telemetry attribution") -> str:
    """The flat per-phase table ``repro profile`` prints."""
    from repro.bench.reporting import format_table

    rows = [
        (
            r["cat"],
            r["name"],
            r["count"],
            f"{r['host_seconds'] * 1e3:.3f}",
            f"{r['device_seconds'] * 1e3:.3f}",
        )
        for r in attribution(tracer)
    ]
    return format_table(
        ["cat", "span", "count", "host ms", "device ms"], rows, title=title
    )
