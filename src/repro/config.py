"""Calibration constants for the GPTPU reproduction.

Every number in this module is traceable to the SC '21 paper; the table or
section it comes from is cited next to the value.  The simulator never
hard-codes performance numbers elsewhere — timing models read them from
the dataclasses below so that ablation benchmarks can perturb them.

Units
-----
* time: seconds
* data: bytes
* power: watts
* rates: operations / results / bytes per second
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping

# ---------------------------------------------------------------------------
# Table 1 — measured OPS (instructions/s) and RPS (result values/s) for each
# Edge TPU instruction at its optimal input shape.
# ---------------------------------------------------------------------------

#: Paper Table 1, column "OPS (ops per second)".
TABLE1_OPS: Mapping[str, float] = MappingProxyType(
    {
        "conv2D": 10268.80,
        "FullyConnected": 51924.96,
        "sub": 6273.28,
        "add": 6203.52,
        "mul": 14515.84,
        "crop": 4867.96,
        "ext": 1604.78,
        "mean": 408.54,
        "max": 477.08,
        "tanh": 3232.31,
        "ReLu": 11194.26,
        # NN-inference extension opcodes (docs/nn.md) — not paper values.
        # conv2D_nn is a host-level macro lowered onto conv2D instructions,
        # so it inherits conv2D's rates; pool/softmax are calibrated by
        # analogy to the reduction/LUT instructions above.
        "conv2D_nn": 10268.80,
        "pool": 4200.00,
        "softmax": 2987.50,
    }
)

#: Paper Table 1, column "RPS (results per second)".
TABLE1_RPS: Mapping[str, float] = MappingProxyType(
    {
        "conv2D": 168_240_326.89,
        "FullyConnected": 6_646_394.57,
        "sub": 82_871_343.60,
        "add": 98_293_633.48,
        "mul": 216_469_999.54,
        "crop": 1_562_904_391.76,
        "ext": 3_637_240_203.38,
        "mean": 408.54,
        "max": 477.08,
        "tanh": 2_148_232_470.28,
        "ReLu": 4_043_196_115.38,
        # NN-inference extension opcodes (docs/nn.md); RPS chosen so the
        # optimal output shape (RPS / OPS) is a whole tile: conv2D_nn
        # mirrors conv2D, pool/softmax peak at 16384 = 128² elements.
        "conv2D_nn": 168_240_326.89,
        "pool": 68_812_800.00,
        "softmax": 48_947_200.00,
    }
)


@dataclass(frozen=True)
class EdgeTPUConfig:
    """Static characteristics of one Edge TPU (paper §2.2, §3.2, §3.3)."""

    #: On-chip data memory (paper §2.2: "smaller data memory (i.e., 8 MB)").
    onchip_memory_bytes: int = 8 * 1024 * 1024
    #: Peak throughput (paper §1: 4 TOPS under 2 W TDP).
    peak_tops: float = 4.0
    #: Thermal design power (paper §2.2).
    tdp_watts: float = 2.0
    #: Matrix-unit native tile (paper §3.3: "the Edge TPU's matrix unit is
    #: designed for computing on 128x128x8-bit matrices").
    matrix_unit_dim: int = 128
    #: Optimal sub-matrix shape for the matrix-wise reductions
    #: (paper §6.2.1: "both instructions favor 64x64 sub-matrices").
    reduction_tile_dim: int = 64
    #: Host→device effective transfer latency per byte (paper §3.2:
    #: "transmitting 1 MB of data to an Edge TPU takes around 6 ms").
    transfer_seconds_per_byte: float = 6e-3 / (1024 * 1024)
    #: Fixed per-transfer setup latency; 8 MB takes 48 ms in the paper,
    #: i.e. the rate is flat, so the fixed cost is small (a descriptor
    #: write + doorbell round trip).
    transfer_setup_seconds: float = 5e-6
    #: Per-instruction host dispatch overhead (CISC instructions are issued
    #: by the host over PCIe; paper §2.1, §3.2).
    dispatch_seconds: float = 10e-6
    #: Active power draw measured on the prototype (paper §8.1:
    #: "each active Edge TPU adds only 0.9 W to 1.4 W").
    active_power_watts: float = 1.2
    #: Sustained multiply-accumulate rate for general-purpose matrix work
    #: (MACs/s).  The marketing 4 TOPS figure assumes NN inference with
    #: perfect weight reuse; the rate realizable through the GPTPU path is
    #: calibrated from Fig. 6 (conv2D GEMM beats one CPU core by 1.48× /
    #: 1.90× / 2.06× at 1K/2K/4K), which implies ≈36 GMAC/s end to end.
    sustained_macs_per_sec: float = 36e9
    #: Model-compile latency of the stock Python TFLite flow for a 2K×2K
    #: matrix (paper §3.3: 2.7 s).
    tflite_compile_seconds_2k: float = 2.7
    #: Model-build latency of the C-based Tensorizer for a 2K×2K matrix
    #: (paper §6.2.3: 1.8 ms — a 1500× speedup).
    tensorizer_build_seconds_2k: float = 1.8e-3
    #: Uniform multiplier on the Table 1 OPS/RPS rates and the sustained
    #: MAC rate.  1.0 models the Edge TPU the paper measured; the Cloud
    #: TPU variant (§2.2) scales by its TOPS ratio.
    rate_scale: float = 1.0

    def ops(self, opname: str) -> float:
        """Return the calibrated instruction rate for *opname* (Table 1)."""
        return TABLE1_OPS[opname] * self.rate_scale

    def rps(self, opname: str) -> float:
        """Return the calibrated result rate for *opname* (Table 1)."""
        return TABLE1_RPS[opname] * self.rate_scale

    @property
    def peak_tops_per_watt(self) -> float:
        """Performance per watt (§2.2: Edge 2 TOPS/W vs Cloud 0.36)."""
        return self.peak_tops / self.tdp_watts


#: A Google Cloud TPU modeled through the same interface (§2.2: 90 TOPS
#: under a 250 W TDP, a 256×256 matrix unit, far more on-chip memory).
#: Used by the comparison benchmark for the paper's performance-per-watt
#: argument — Edge: 2 TOPS/W, Cloud: 0.36 TOPS/W.
CLOUD_TPU = EdgeTPUConfig(
    onchip_memory_bytes=32 * 1024 * 1024,
    peak_tops=90.0,
    tdp_watts=250.0,
    matrix_unit_dim=256,
    rate_scale=90.0 / 4.0,
    sustained_macs_per_sec=36e9 * (90.0 / 4.0),
)


@dataclass(frozen=True)
class CPUConfig:
    """Analytic cost model for one Ryzen 3700X core (paper §3.1, §8.1).

    The per-kernel effective rates are calibrated so that the paper's
    published single-core baselines reproduce the Fig. 6 / Fig. 7 speedup
    ratios; see DESIGN.md §4.
    """

    #: Max boost clock (paper §3.1: 4.4 GHz).
    clock_hz: float = 4.4e9
    #: Effective single-core OpenBLAS sgemm rate.  Chosen so the 4K×4K
    #: conv2D GEMM speedup lands near the paper's 2.06×.
    sgemm_flops: float = 35e9
    #: Effective rate for streaming elementwise kernels (bytes/s) — bound
    #: by one core's share of DDR4 bandwidth.
    stream_bytes_per_sec: float = 12e9
    #: Effective rate of Rodinia's *naive* (non-BLAS) matrix kernels —
    #: Backprop's and LUD's hand-written loops.  Far below the OpenBLAS
    #: rate (no blocking/vectorization), calibrated so Backprop shows
    #: ~2× the GEMM speedup as in Fig. 7(a) (4.08× vs 2.06×).
    naive_gemm_flops: float = 7e9
    #: Effective rate for the Rodinia HotSpot3D stencil (point updates/s).
    #: The reference kernel is a naive triple loop with divisions;
    #: calibrated so GPTPU's transfer-bound HotSpot3D lands near the
    #: paper's smallest speedup, 1.14× (Fig. 7a).
    stencil_updates_per_sec: float = 38e6
    #: Effective scalar/branchy rate (ops/s) for row-reduction style code.
    scalar_flops: float = 3.0e9
    #: Effective edge-traversal rate of the CPU graph baseline
    #: (GraphBLAST-style CSR walk, ~2.5 ns/edge), calibrated against the
    #: paper's PageRank speedup in Fig. 7(a).
    graph_edges_per_sec: float = 175e6
    #: Effective rate for transcendental-heavy kernels (evaluations/s).
    #: AxBench's reference CNDF costs ~220 ns/option on one Ryzen core;
    #: calibrated against the paper's Black-Scholes speedup in Fig. 7(a).
    transcendental_evals_per_sec: float = 2.8e6
    #: Effective rate of the Rodinia LUD baseline (flops/s).  LUD's
    #: reference code is pointer-chasing blocked C; calibrated against
    #: the paper's Fig. 7(a) LUD speedup.
    lud_effective_flops: float = 4.5e9
    #: Active power of one loaded core (paper §8.1: 6.5 W to 12.5 W).
    core_active_power_watts: float = 11.0
    #: Number of physical cores (paper §3.1: Ryzen 3700X, 8 cores).
    num_cores: int = 8
    #: OpenMP parallel efficiency on the prototype.  Paper Fig. 8(a): the
    #: 8-core OpenMP implementations reach only 2.70× over one core, i.e.
    #: memory-bandwidth-bound scaling.
    openmp_8core_speedup: float = 2.70


@dataclass(frozen=True)
class GPUConfig:
    """Analytic cost model for a comparison GPU (paper §9.4, Table 6)."""

    name: str
    #: Average speedup over one Ryzen core across the paper's workloads.
    mean_speedup_vs_cpu_core: float
    #: Board power under load (paper Table 6).
    active_power_watts: float
    #: Idle power contribution of the board in the test system.
    idle_power_watts: float
    #: Purchase cost in USD (paper Table 6).
    cost_usd: float
    #: Device memory capacity — Jetson Nano's 4 GB forces the paper to
    #: scale several inputs down by 25–50 % (paper §9.4).
    memory_bytes: int


#: Paper §9.4: "The GTX 2080 GPU is 364× faster than a CPU core"; Table 6.
RTX_2080 = GPUConfig(
    name="RTX 2080",
    mean_speedup_vs_cpu_core=364.0,
    active_power_watts=215.0,
    idle_power_watts=39.0,
    cost_usd=699.66,
    memory_bytes=8 * 1024**3,
)

#: Paper §9.4: Jetson Nano is "15% faster than a CPU core"; Table 6.
JETSON_NANO = GPUConfig(
    name="Jetson Nano",
    mean_speedup_vs_cpu_core=1.15,
    active_power_watts=10.0,
    idle_power_watts=0.5,
    cost_usd=123.99,
    memory_bytes=4 * 1024**3,
)


@dataclass(frozen=True)
class SystemConfig:
    """Whole-platform configuration (paper §3.1, §8.1)."""

    edgetpu: EdgeTPUConfig = field(default_factory=EdgeTPUConfig)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    #: Idle power of the experimental platform (paper §8.1: 40 W).
    idle_power_watts: float = 40.0
    #: Number of M.2 Edge TPUs the prototype hosts (paper §3.1).
    num_edge_tpus: int = 8
    #: Edge TPUs per quad-TPU expansion card (paper §3.1, Fig. 1).
    tpus_per_card: int = 4
    #: PCIe 2.0 single-lane raw bandwidth (500 MB/s) — each M.2 Edge TPU
    #: occupies one lane (paper §3.1).
    pcie_lane_bytes_per_sec: float = 500e6
    #: One-hop switch latency (paper §3.1: "one hop (i.e., the PCIe
    #: switch) in the middle").
    pcie_switch_latency_seconds: float = 1e-6
    #: How the Edge TPUs attach to the host: "pcie" (the §3.1 quad-card
    #: prototype), "dual" (Table 6's cheaper dual-TPU M.2 modules), or
    #: "usb" (the alternative the paper rejects for latency/bandwidth).
    interconnect: str = "pcie"

    def with_tpus(self, n: int) -> "SystemConfig":
        """Return a copy of this config with *n* Edge TPUs."""
        if n < 1:
            raise ValueError(f"need at least one Edge TPU, got {n}")
        return replace(self, num_edge_tpus=n)

    def with_interconnect(self, kind: str) -> "SystemConfig":
        """Return a copy attached via *kind* ("pcie", "dual", or "usb")."""
        if kind not in ("pcie", "dual", "usb"):
            raise ValueError(
                f"unknown interconnect {kind!r}; choose 'pcie', 'dual', or 'usb'"
            )
        return replace(self, interconnect=kind)


#: The default configuration used across tests, examples, and benchmarks.
DEFAULT_CONFIG = SystemConfig()
