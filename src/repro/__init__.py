"""GPTPU reproduction: general-purpose computing on (simulated) Edge TPUs.

Reproduces Hsu & Tseng, "Accelerating Applications using Edge Tensor
Processing Units" (SC '21).  See README.md for a tour and DESIGN.md for
the hardware-substitution rationale.

Public API quick reference
--------------------------
>>> from repro import OpenCtpu, Platform, tpu_gemm
>>> ctx = OpenCtpu(Platform.with_tpus(4))
>>> # c = tpu_gemm(ctx, a, b); report = ctx.sync()

* :class:`repro.runtime.api.OpenCtpu` — the §5 programming interface,
* :class:`repro.host.platform.Platform` — a simulated GPTPU machine,
* :mod:`repro.ops` — the optimized operator library (``tpuGemm`` etc.),
* :mod:`repro.apps` — the seven Table 3 applications,
* :mod:`repro.bench` — characterization + experiment harness,
* ``python -m repro`` — command-line front end.
"""

from repro.config import DEFAULT_CONFIG, EdgeTPUConfig, SystemConfig
from repro.host.platform import Platform
from repro.ops import tpu_gemm, tpu_gemm_precise, tpu_matvec
from repro.runtime.api import OpenCtpu, SyncReport, TpuTensor
from repro.runtime.opqueue import QuantMode

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "EdgeTPUConfig",
    "OpenCtpu",
    "Platform",
    "QuantMode",
    "SyncReport",
    "SystemConfig",
    "TpuTensor",
    "__version__",
    "tpu_gemm",
    "tpu_gemm_precise",
    "tpu_matvec",
]
