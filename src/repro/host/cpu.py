"""Analytic cost model for one Ryzen 3700X core (paper §3.1, §8).

Baseline applications execute their real math in NumPy; this model
assigns the *simulated* wall time the same computation takes on the
paper's CPU.  Rates live in :class:`repro.config.CPUConfig` and are
calibrated per DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CPUConfig


def openmp_speedup(ncores: int, config: CPUConfig | None = None) -> float:
    """Multicore speedup of the OpenMP baselines.

    The paper's 8-core OpenMP implementations reach only 2.70× over one
    core (Fig. 8a) — memory-bandwidth-bound scaling.  We model it with a
    serialization fraction β fitted through that point:

        speedup(n) = n / (1 + β (n - 1)),  β s.t. speedup(8) = 2.70
    """
    config = config or CPUConfig()
    if ncores < 1:
        raise ValueError(f"need at least one core, got {ncores}")
    target = config.openmp_8core_speedup
    beta = (8.0 / target - 1.0) / 7.0
    return ncores / (1.0 + beta * (ncores - 1))


@dataclass(frozen=True)
class CPUCoreModel:
    """Per-kernel wall-time model for a single core."""

    config: CPUConfig = CPUConfig()

    def gemm_seconds(self, m: int, n: int, k: int) -> float:
        """Dense single-precision GEMM via OpenBLAS: 2·m·n·k flops."""
        self._check(m, n, k)
        return 2.0 * m * n * k / self.config.sgemm_flops

    def naive_gemm_seconds(self, m: int, n: int, k: int) -> float:
        """Hand-written (Rodinia-style) matrix product — no BLAS."""
        self._check(m, n, k)
        return 2.0 * m * n * k / self.config.naive_gemm_flops

    def graph_traversal_seconds(self, edges: int) -> float:
        """Edge-at-a-time graph kernel (PageRank baseline)."""
        self._check(edges)
        return edges / self.config.graph_edges_per_sec

    def matvec_seconds(self, m: int, n: int) -> float:
        """Dense matrix–vector product — memory-bound: the matrix is
        streamed once (float32)."""
        self._check(m, n)
        return 4.0 * m * n / self.config.stream_bytes_per_sec

    def stream_seconds(self, nbytes: int) -> float:
        """Streaming elementwise kernel touching *nbytes* of memory."""
        self._check(nbytes)
        return nbytes / self.config.stream_bytes_per_sec

    def elementwise_seconds(self, elems: int, bytes_per_elem: int = 12) -> float:
        """Pairwise a⊕b→c over float32 arrays (two reads + one write)."""
        self._check(elems)
        return elems * bytes_per_elem / self.config.stream_bytes_per_sec

    def stencil_seconds(self, point_updates: int) -> float:
        """Weighted-neighbor stencil sweep (HotSpot3D-style)."""
        self._check(point_updates)
        return point_updates / self.config.stencil_updates_per_sec

    def scalar_seconds(self, ops: int) -> float:
        """Branchy scalar work (row reductions, pivoting)."""
        self._check(ops)
        return ops / self.config.scalar_flops

    def transcendental_seconds(self, evals: int) -> float:
        """exp/log/sqrt-heavy evaluations (Black-Scholes CNDF)."""
        self._check(evals)
        return evals / self.config.transcendental_evals_per_sec

    def aggregate_seconds(self, elems: int) -> float:
        """Host-side aggregation of device partial results (§6.2.1:
        "requires very short latency to execute on modern processors")."""
        self._check(elems)
        return elems * 8 / self.config.stream_bytes_per_sec

    def parallel_seconds(self, single_core_seconds: float, ncores: int) -> float:
        """Wall time of the OpenMP version on *ncores* cores."""
        if single_core_seconds < 0:
            raise ValueError("negative duration")
        return single_core_seconds / openmp_speedup(ncores, self.config)

    @staticmethod
    def _check(*values: int) -> None:
        for v in values:
            if v < 0:
                raise ValueError(f"negative work amount {v}")
