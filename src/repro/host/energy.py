"""Energy accounting (paper §8.1).

The paper meters wall power for the whole system and integrates it over
the application runtime.  The published component numbers:

* platform idle: 40 W (southbridge, NVMe, peripherals),
* one loaded Ryzen core: +6.5 W to +12.5 W (we use 11 W),
* one active Edge TPU: +0.9 W to +1.4 W (we use 1.2 W),
* GPUs per Table 6.

``energy = idle_power × wall_time + Σ_unit active_power(unit) × busy(unit)``

which is exactly how the paper decomposes "active energy" vs "idle
energy" in Fig. 7(b) and Fig. 9(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.config import JETSON_NANO, RTX_2080, SystemConfig


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one application run."""

    wall_seconds: float
    idle_joules: float
    active_joules: float

    @property
    def total_joules(self) -> float:
        """Idle plus active energy."""
        return self.idle_joules + self.active_joules

    @property
    def energy_delay_product(self) -> float:
        """EDP = total energy × wall time (Fig. 7b's third bar)."""
        return self.total_joules * self.wall_seconds


class EnergyModel:
    """Maps per-unit busy times to joules."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()

    def active_power_watts(self, unit: str) -> float:
        """Active power draw of one hardware unit.

        Unit names: ``"cpu-core"`` / ``"cpu-coreN"``, ``"tpuN"``,
        ``"gpu:RTX 2080"``, ``"gpu:Jetson Nano"``.
        """
        if unit.startswith("cpu"):
            return self.config.cpu.core_active_power_watts
        if unit.startswith("tpu"):
            return self.config.edgetpu.active_power_watts
        if unit.startswith("gpu:"):
            name = unit[4:]
            for gpu in (RTX_2080, JETSON_NANO):
                if gpu.name == name:
                    return gpu.active_power_watts
            raise KeyError(f"unknown GPU {name!r}")
        raise KeyError(f"unknown hardware unit {unit!r}")

    def idle_power_watts(self, extra_units: Mapping[str, float] | None = None) -> float:
        """Platform idle power; GPUs add their idle draw when present."""
        idle = self.config.idle_power_watts
        for unit in extra_units or {}:
            if unit.startswith("gpu:"):
                name = unit[4:]
                for gpu in (RTX_2080, JETSON_NANO):
                    if gpu.name == name:
                        idle += gpu.idle_power_watts
        return idle

    def report(self, wall_seconds: float, busy_by_unit: Mapping[str, float]) -> EnergyReport:
        """Energy for a run of *wall_seconds* with the given busy times."""
        if wall_seconds < 0:
            raise ValueError("negative wall time")
        active = 0.0
        for unit, busy in busy_by_unit.items():
            if busy < 0:
                raise ValueError(f"negative busy time for {unit!r}")
            if busy > wall_seconds * (1 + 1e-9):
                raise ValueError(
                    f"unit {unit!r} busy {busy:.6g}s exceeds wall time {wall_seconds:.6g}s"
                )
            active += self.active_power_watts(unit) * busy
        idle = self.idle_power_watts(busy_by_unit) * wall_seconds
        return EnergyReport(wall_seconds=wall_seconds, idle_joules=idle, active_joules=active)
