"""Host-side hardware models: CPU, GPUs, energy, and platform assembly.

The paper's baselines run on real hardware (Ryzen 3700X, RTX 2080,
Jetson Nano) measured with a wall-power meter.  We model each with an
analytic cost model whose constants are documented in
:mod:`repro.config` and calibrated against the paper's published
numbers (DESIGN.md §1, §4).  Baseline *results* are always computed
exactly with NumPy — only *time* and *power* are modeled.
"""

from repro.host.cpu import CPUCoreModel, openmp_speedup
from repro.host.energy import EnergyModel, EnergyReport
from repro.host.gpu import GPUModel, JETSON_NANO_MODEL, RTX_2080_MODEL
from repro.host.platform import Platform

__all__ = [
    "CPUCoreModel",
    "EnergyModel",
    "EnergyReport",
    "GPUModel",
    "JETSON_NANO_MODEL",
    "Platform",
    "RTX_2080_MODEL",
    "openmp_speedup",
]
