"""Comparison-GPU cost models (paper §9.4, Table 6, Fig. 9).

The paper compares GPTPU against an RTX 2080 (Turing, 16-bit ALUs and
8-bit Tensor Cores enabled where applicable) and a Jetson Nano.  We have
neither, so each is an analytic model: per-application speedup factors
over one Ryzen core, read off the paper's Fig. 9(a) bars where labeled
and otherwise distributed around the published means (364× for the
RTX 2080, 1.15× for the Jetson Nano).  The factors are *inputs* taken
from the paper, not results — Fig. 9 benches exist to verify that our
GPTPU-side numbers land in the right position relative to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.config import GPUConfig, JETSON_NANO, RTX_2080

#: Per-application speedups over a single Ryzen core for the RTX 2080.
#: GEMM uses cuBLAS with 8-bit Tensor Cores; Gaussian/HotSpot3D/Backprop
#: use 16-bit ALUs (§9.4).  Values estimated from Fig. 9(a); their
#: arithmetic mean reproduces the published 364×.
RTX_2080_APP_SPEEDUPS: Mapping[str, float] = MappingProxyType(
    {
        "blackscholes": 220.0,
        "gaussian": 160.0,
        "gemm": 1150.0,
        "hotspot3d": 290.0,
        "lud": 210.0,
        "pagerank": 130.0,
        "backprop": 388.0,
    }
)

#: Per-application speedups for the Jetson Nano (mean ≈ 1.15×, §9.4).
JETSON_NANO_APP_SPEEDUPS: Mapping[str, float] = MappingProxyType(
    {
        "blackscholes": 1.6,
        "gaussian": 0.7,
        "gemm": 2.4,
        "hotspot3d": 1.3,
        "lud": 0.6,
        "pagerank": 0.45,
        "backprop": 1.0,
    }
)


@dataclass(frozen=True)
class GPUModel:
    """Wall-time and power model for one comparison GPU."""

    config: GPUConfig
    app_speedups: Mapping[str, float] = field(default_factory=dict)

    def speedup(self, app: str) -> float:
        """Speedup over one Ryzen core for *app* (mean if unknown)."""
        return self.app_speedups.get(app.lower(), self.config.mean_speedup_vs_cpu_core)

    def app_seconds(self, app: str, cpu_core_seconds: float) -> float:
        """GPU wall time for an app whose 1-core CPU time is known."""
        if cpu_core_seconds < 0:
            raise ValueError("negative duration")
        return cpu_core_seconds / self.speedup(app)

    def fits(self, input_bytes: int) -> bool:
        """Whether the input fits device memory (§9.4: Jetson Nano's 4 GB
        forces 25–50 % smaller inputs)."""
        # Working set ≈ input + output + intermediates; the paper scales
        # inputs down when they approach half the device memory.
        return input_bytes * 2 <= self.config.memory_bytes

    def max_input_bytes(self) -> int:
        """Largest input the device can host under the same rule."""
        return self.config.memory_bytes // 2

    def scaled_input_bytes(self, input_bytes: int) -> int:
        """Input size after the §9.4 down-scaling, if needed."""
        return min(input_bytes, self.max_input_bytes())


#: Ready-made models for the two paper GPUs.
RTX_2080_MODEL = GPUModel(RTX_2080, RTX_2080_APP_SPEEDUPS)
JETSON_NANO_MODEL = GPUModel(JETSON_NANO, JETSON_NANO_APP_SPEEDUPS)
