"""Platform assembly: CPU + Edge TPUs + interconnect + DES + energy.

A :class:`Platform` bundles one simulation's worth of state.  The
runtime executor (``repro.runtime.executor``) drives it; benchmarks
create a fresh platform per run so simulated clocks start at zero.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SystemConfig
from repro.edgetpu.device import EdgeTPUDevice
from repro.edgetpu.timing import TimingModel
from repro.host.cpu import CPUCoreModel
from repro.host.energy import EnergyModel
from repro.interconnect.topology import (
    Topology,
    build_dual_module_topology,
    build_prototype_topology,
    build_usb_topology,
)
from repro.interconnect.transfer import DMAEngine
from repro.sim import Engine
from repro.sim.trace import Tracer


class Platform:
    """One instantiated GPTPU machine (paper §3.1)."""

    def __init__(self, config: Optional[SystemConfig] = None, trace: bool = True) -> None:
        self.config = config or SystemConfig()
        self.engine = Engine()
        self.tracer = Tracer(enabled=trace)
        self.timing = TimingModel(self.config.edgetpu)
        if self.config.interconnect == "usb":
            self.topology: Topology = build_usb_topology(self.config)
        elif self.config.interconnect == "dual":
            self.topology = build_dual_module_topology(self.config)
        else:
            self.topology = build_prototype_topology(self.config)
        self.dma = DMAEngine(self.engine, self.topology, self.tracer)
        self.devices: List[EdgeTPUDevice] = [
            EdgeTPUDevice(f"tpu{i}", self.config.edgetpu, self.timing)
            for i in range(self.config.num_edge_tpus)
        ]
        self.cpu = CPUCoreModel(self.config.cpu)
        self.energy = EnergyModel(self.config)

    @property
    def num_tpus(self) -> int:
        """Number of Edge TPUs installed."""
        return len(self.devices)

    @classmethod
    def with_tpus(cls, n: int, trace: bool = True) -> "Platform":
        """A default platform with *n* Edge TPUs (Fig. 8 sweeps)."""
        return cls(SystemConfig().with_tpus(n), trace=trace)

    def busy_by_unit(self) -> dict:
        """Busy seconds per unit from the trace (for the energy model)."""
        return self.tracer.busy_seconds()
