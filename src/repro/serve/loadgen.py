"""Closed-loop multi-tenant load generator for the serving layer.

Drives a :class:`~repro.serve.server.TpuServer` with ``tenants``
concurrent clients, each issuing ``requests_per_tenant`` GEMMs
back-to-back against a shared model operand *B* (the coalescing-friendly
"many clients, one weight matrix" serving pattern), optionally killing
one simulated TPU mid-run to exercise retry/requeue and the circuit
breaker.  Deterministic: inputs come from a seeded RNG and every
client's result is checked bit-for-bit against the solo lowering of the
same request, so the benchmark asserts the zero-lost / zero-duplicated
/ bit-identical invariants rather than just timing them.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.edgetpu.isa import Opcode
from repro.errors import DeviceFailure, QueueFull, RequestTimeout
from repro.host.platform import Platform
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.runtime.tensorizer import Tensorizer
from repro.serve.server import ServeConfig, TpuServer


@dataclass(frozen=True)
class LoadgenSpec:
    """One load-generation scenario."""

    tpus: int = 8
    tenants: int = 6
    requests_per_tenant: int = 8
    #: Square GEMM size per request (m = k = n = size).
    size: int = 128
    seed: int = 7
    #: Kill device ``fail_device`` after this many instructions (0 = no
    #: fault injection).  -1 failures = permanent death.
    fail_after_instructions: int = 0
    fail_device: int = 0
    #: Fault mode for the injected plan: "fail-stop" raises, while the
    #: corruption modes ("bitflip", "stuck", "skew") silently mangle
    #: returned tiles — pair those with ``integrity != "off"`` or the
    #: bit-identity verification below will flag mismatches.
    fail_mode: str = "fail-stop"
    #: SDC-defense mode for the server ("off", "abft", "vote").
    integrity: str = "off"
    #: Real seconds per modeled second; 0 runs as fast as asyncio allows.
    time_scale: float = 0.0
    #: Per-request deadline, or None.
    deadline_seconds: Optional[float] = None
    #: Verify every delivered result bit-for-bit against solo lowering.
    verify: bool = True
    #: AOT compiled-plan cache on the server (lower once, bind many).
    plan_cache: bool = True
    #: Request shape mix: "gemm" is the classic coalescing-friendly
    #: shared-B GEMM stream; "nn" cycles each tenant through an NN
    #: inference triple — a shared-weight conv2D_nn layer, an
    #: attention-score GEMM, and a softmax over the scores.  Only the
    #: GEMMs are coalescible; conv2D_nn and softmax requests must ride
    #: through the server as singletons.
    mix: str = "gemm"
    #: Multi-TPU segmentation mode ("auto" or "off"; see repro.shard).
    shard: str = "auto"
    #: Worker processes for the data plane (0 = in-process server; see
    #: repro.mp).  Requires 1 <= workers <= tpus when non-zero.
    workers: int = 0


@dataclass
class LoadgenResult:
    """Outcome of one :func:`run_loadgen` scenario."""

    snapshot: dict
    wall_seconds: float
    #: Results that did not match the solo-lowering reference.
    mismatches: int
    #: Per-tenant delivered-result counts.
    delivered_by_tenant: dict


async def _client(
    server: TpuServer,
    tenant: str,
    requests: List[OperationRequest],
    results: dict,
    spec: LoadgenSpec,
) -> None:
    delivered = 0
    for i, request in enumerate(requests):
        try:
            result = await server.submit(
                request, deadline_seconds=spec.deadline_seconds
            )
        except QueueFull:
            await asyncio.sleep(0.001)  # back off and drop this request
            continue
        except (DeviceFailure, RequestTimeout):
            continue  # surfaced failure — counted server-side
        results[(tenant, i)] = result
        delivered += 1
    results[("__delivered__", tenant)] = delivered


def _nn_mix(spec: LoadgenSpec, rng: np.random.Generator) -> dict:
    """Per-tenant NN inference traffic: conv layer, attention GEMM, softmax.

    The conv weights and the attention key matrix are shared across
    tenants (the "many clients, one model" serving pattern); activations
    are per-request.  The stream deliberately interleaves coalescible
    GEMMs with non-coalescible NN ops so the serving path proves it
    keeps them apart.
    """
    seq, d_head = 48, 32
    conv_w = rng.normal(size=(8, 3, 3, 3))
    k_t = rng.normal(size=(d_head, seq))  # shared Kᵀ for the score GEMM
    per_tenant: dict = {}
    for t in range(spec.tenants):
        tenant = f"tenant{t}"
        reqs = []
        for i in range(spec.requests_per_tenant):
            shape_kind = i % 3
            if shape_kind == 0:
                reqs.append(
                    OperationRequest(
                        task_id=0,
                        opcode=Opcode.CONV2D_NN,
                        inputs=(rng.normal(size=(1, 3, 14, 14)) * 2.0, conv_w),
                        quant=QuantMode.SCALE,
                        attrs={"stride": (1, 1), "padding": (1, 1, 1, 1),
                               "relu": True},
                        tenant=tenant,
                    )
                )
            elif shape_kind == 1:
                reqs.append(
                    OperationRequest(
                        task_id=0,
                        opcode=Opcode.CONV2D,
                        inputs=(rng.normal(size=(seq, d_head)), k_t),
                        quant=QuantMode.SCALE,
                        attrs={"gemm": True},
                        tenant=tenant,
                    )
                )
            else:
                reqs.append(
                    OperationRequest(
                        task_id=0,
                        opcode=Opcode.SOFTMAX,
                        inputs=(rng.normal(size=(seq, seq)) * 2.0,),
                        quant=QuantMode.SCALE,
                        attrs={},
                        tenant=tenant,
                    )
                )
        per_tenant[tenant] = reqs
    return per_tenant


async def _run(
    spec: LoadgenSpec, clock: Callable[[], float] = time.monotonic
) -> LoadgenResult:
    rng = np.random.default_rng(spec.seed)
    platform = Platform.with_tpus(spec.tpus)
    config = ServeConfig(
        max_queue_depth=max(spec.tenants * spec.requests_per_tenant, 8),
        time_scale=spec.time_scale,
        breaker_cooldown=0.02,
        integrity=spec.integrity,
        quarantine_seconds=0.02,
        plan_cache=spec.plan_cache,
        shard=spec.shard,
    )
    per_tenant: dict = {}
    if spec.mix == "nn":
        per_tenant = _nn_mix(spec, rng)
    elif spec.mix == "gemm":
        # One shared weight matrix across all tenants → coalescible traffic.
        b = rng.integers(-64, 64, size=(spec.size, spec.size)).astype(np.float32)
        for t in range(spec.tenants):
            tenant = f"tenant{t}"
            per_tenant[tenant] = [
                OperationRequest(
                    task_id=0,
                    opcode=Opcode.CONV2D,
                    inputs=(
                        rng.integers(-64, 64, size=(spec.size, spec.size)).astype(
                            np.float32
                        ),
                        b,
                    ),
                    quant=QuantMode.SCALE,
                    attrs={"gemm": True},
                    tenant=tenant,
                )
                for _ in range(spec.requests_per_tenant)
            ]
    else:
        raise ValueError(f"unknown loadgen mix {spec.mix!r}; choose gemm or nn")

    if spec.fail_after_instructions > 0:
        platform.devices[spec.fail_device % spec.tpus].inject_fault(
            after_instructions=spec.fail_after_instructions,
            failures=-1,
            reason="loadgen-injected permanent fault",
            mode=spec.fail_mode,
            seed=spec.seed,
        )

    if spec.workers:
        # Multi-process data plane: the parent stays the admission /
        # coalescing tier; lowering and device math run in workers.
        from repro.mp import MpTpuServer

        server = MpTpuServer(platform, config, workers=spec.workers, clock=clock)
    else:
        server = TpuServer(platform, config, clock=clock)

    results: dict = {}
    start = clock()
    async with server:
        await asyncio.gather(
            *(
                _client(server, tenant, reqs, results, spec)
                for tenant, reqs in per_tenant.items()
            )
        )
        await server.drain()
        snapshot = server.snapshot()
    wall = clock() - start

    mismatches = 0
    if spec.verify:
        # Solo reference: a fresh Tensorizer lowering each request alone
        # must be bit-identical to whatever the (possibly coalesced,
        # possibly retried) serving path delivered.
        reference = Tensorizer(platform.config.edgetpu, cpu=platform.cpu)
        for tenant, reqs in per_tenant.items():
            for i, request in enumerate(reqs):
                got = results.get((tenant, i))
                if got is None:
                    continue
                want = reference.lower(request).result
                if not np.array_equal(got, want):
                    mismatches += 1
    delivered_by_tenant = {
        tenant: results.get(("__delivered__", tenant), 0) for tenant in per_tenant
    }
    return LoadgenResult(
        snapshot=snapshot,
        wall_seconds=wall,
        mismatches=mismatches,
        delivered_by_tenant=delivered_by_tenant,
    )


def run_loadgen(
    spec: Optional[LoadgenSpec] = None,
    *,
    clock: Callable[[], float] = time.monotonic,
) -> LoadgenResult:
    """Run one scenario to completion on a private event loop.

    ``clock`` is injectable (the same contract as ``DevicePool``): the
    reported wall time and the server's internal time base both read it,
    so tests can pin a deterministic fake clock instead of racing
    ``time.monotonic()``.
    """
    return asyncio.run(_run(spec or LoadgenSpec(), clock))
