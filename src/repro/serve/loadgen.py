"""Load generators for the serving layer: closed-loop and open-loop.

The original, closed-loop half (:func:`run_loadgen`) drives a
:class:`~repro.serve.server.TpuServer` with ``tenants`` concurrent
clients, each issuing ``requests_per_tenant`` GEMMs back-to-back
against a shared model operand *B* (the coalescing-friendly "many
clients, one weight matrix" serving pattern), optionally killing one
simulated TPU mid-run to exercise retry/requeue and the circuit
breaker.  Deterministic: inputs come from a seeded RNG and every
client's result is checked bit-for-bit against the solo lowering of the
same request, so the benchmark asserts the zero-lost / zero-duplicated
/ bit-identical invariants rather than just timing them.

The sustained, open-loop half (:func:`run_sustained`) replays a seeded
Poisson schedule from :mod:`repro.serve.arrivals` against a virtual
clock: arrivals fire at their scheduled model-time instants whether or
not earlier requests completed, so admission queues genuinely build and
the SLO machinery (EDF, shedding, preemption, deadline expiry) is
exercised at 10⁵–10⁶ request scale in seconds of wall time.  The run's
outcome stream is fingerprinted so a seed reproduces it bit-for-bit on
the in-process server.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.edgetpu.isa import Opcode
from repro.errors import DeviceFailure, LoadShed, QueueFull, RequestTimeout
from repro.host.energy import EnergyModel
from repro.host.platform import Platform
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.runtime.tensorizer import Tensorizer
from repro.serve.arrivals import build_schedule
from repro.serve.server import ServeConfig, TpuServer
from repro.serve.slo import SloPolicy, gold_silver_bronze


@dataclass(frozen=True)
class LoadgenSpec:
    """One load-generation scenario."""

    tpus: int = 8
    tenants: int = 6
    requests_per_tenant: int = 8
    #: Square GEMM size per request (m = k = n = size).
    size: int = 128
    seed: int = 7
    #: Kill device ``fail_device`` after this many instructions (0 = no
    #: fault injection).  -1 failures = permanent death.
    fail_after_instructions: int = 0
    fail_device: int = 0
    #: Fault mode for the injected plan: "fail-stop" raises, while the
    #: corruption modes ("bitflip", "stuck", "skew") silently mangle
    #: returned tiles — pair those with ``integrity != "off"`` or the
    #: bit-identity verification below will flag mismatches.
    fail_mode: str = "fail-stop"
    #: SDC-defense mode for the server ("off", "abft", "vote").
    integrity: str = "off"
    #: Real seconds per modeled second; 0 runs as fast as asyncio allows.
    time_scale: float = 0.0
    #: Per-request deadline, or None.
    deadline_seconds: Optional[float] = None
    #: Verify every delivered result bit-for-bit against solo lowering.
    verify: bool = True
    #: AOT compiled-plan cache on the server (lower once, bind many).
    plan_cache: bool = True
    #: Request shape mix: "gemm" is the classic coalescing-friendly
    #: shared-B GEMM stream; "nn" cycles each tenant through an NN
    #: inference triple — a shared-weight conv2D_nn layer, an
    #: attention-score GEMM, and a softmax over the scores.  Only the
    #: GEMMs are coalescible; conv2D_nn and softmax requests must ride
    #: through the server as singletons.
    mix: str = "gemm"
    #: Multi-TPU segmentation mode ("auto" or "off"; see repro.shard).
    shard: str = "auto"
    #: Worker processes for the data plane (0 = in-process server; see
    #: repro.mp).  Requires 1 <= workers <= tpus when non-zero.
    workers: int = 0


@dataclass
class LoadgenResult:
    """Outcome of one :func:`run_loadgen` scenario."""

    snapshot: dict
    wall_seconds: float
    #: Results that did not match the solo-lowering reference.
    mismatches: int
    #: Per-tenant delivered-result counts.
    delivered_by_tenant: dict


async def _client(
    server: TpuServer,
    tenant: str,
    requests: List[OperationRequest],
    results: dict,
    spec: LoadgenSpec,
) -> None:
    delivered = 0
    for i, request in enumerate(requests):
        try:
            result = await server.submit(
                request, deadline_seconds=spec.deadline_seconds
            )
        except QueueFull:
            await asyncio.sleep(0.001)  # back off and drop this request
            continue
        except (DeviceFailure, RequestTimeout):
            continue  # surfaced failure — counted server-side
        results[(tenant, i)] = result
        delivered += 1
    results[("__delivered__", tenant)] = delivered


def _nn_mix(spec: LoadgenSpec, rng: np.random.Generator) -> dict:
    """Per-tenant NN inference traffic: conv layer, attention GEMM, softmax.

    The conv weights and the attention key matrix are shared across
    tenants (the "many clients, one model" serving pattern); activations
    are per-request.  The stream deliberately interleaves coalescible
    GEMMs with non-coalescible NN ops so the serving path proves it
    keeps them apart.
    """
    seq, d_head = 48, 32
    conv_w = rng.normal(size=(8, 3, 3, 3))
    k_t = rng.normal(size=(d_head, seq))  # shared Kᵀ for the score GEMM
    per_tenant: dict = {}
    for t in range(spec.tenants):
        tenant = f"tenant{t}"
        reqs = []
        for i in range(spec.requests_per_tenant):
            shape_kind = i % 3
            if shape_kind == 0:
                reqs.append(
                    OperationRequest(
                        task_id=0,
                        opcode=Opcode.CONV2D_NN,
                        inputs=(rng.normal(size=(1, 3, 14, 14)) * 2.0, conv_w),
                        quant=QuantMode.SCALE,
                        attrs={"stride": (1, 1), "padding": (1, 1, 1, 1),
                               "relu": True},
                        tenant=tenant,
                    )
                )
            elif shape_kind == 1:
                reqs.append(
                    OperationRequest(
                        task_id=0,
                        opcode=Opcode.CONV2D,
                        inputs=(rng.normal(size=(seq, d_head)), k_t),
                        quant=QuantMode.SCALE,
                        attrs={"gemm": True},
                        tenant=tenant,
                    )
                )
            else:
                reqs.append(
                    OperationRequest(
                        task_id=0,
                        opcode=Opcode.SOFTMAX,
                        inputs=(rng.normal(size=(seq, seq)) * 2.0,),
                        quant=QuantMode.SCALE,
                        attrs={},
                        tenant=tenant,
                    )
                )
        per_tenant[tenant] = reqs
    return per_tenant


async def _run(
    spec: LoadgenSpec, clock: Callable[[], float] = time.monotonic
) -> LoadgenResult:
    rng = np.random.default_rng(spec.seed)
    platform = Platform.with_tpus(spec.tpus)
    config = ServeConfig(
        max_queue_depth=max(spec.tenants * spec.requests_per_tenant, 8),
        time_scale=spec.time_scale,
        breaker_cooldown=0.02,
        integrity=spec.integrity,
        quarantine_seconds=0.02,
        plan_cache=spec.plan_cache,
        shard=spec.shard,
    )
    per_tenant: dict = {}
    if spec.mix == "nn":
        per_tenant = _nn_mix(spec, rng)
    elif spec.mix == "gemm":
        # One shared weight matrix across all tenants → coalescible traffic.
        b = rng.integers(-64, 64, size=(spec.size, spec.size)).astype(np.float32)
        for t in range(spec.tenants):
            tenant = f"tenant{t}"
            per_tenant[tenant] = [
                OperationRequest(
                    task_id=0,
                    opcode=Opcode.CONV2D,
                    inputs=(
                        rng.integers(-64, 64, size=(spec.size, spec.size)).astype(
                            np.float32
                        ),
                        b,
                    ),
                    quant=QuantMode.SCALE,
                    attrs={"gemm": True},
                    tenant=tenant,
                )
                for _ in range(spec.requests_per_tenant)
            ]
    else:
        raise ValueError(f"unknown loadgen mix {spec.mix!r}; choose gemm or nn")

    if spec.fail_after_instructions > 0:
        platform.devices[spec.fail_device % spec.tpus].inject_fault(
            after_instructions=spec.fail_after_instructions,
            failures=-1,
            reason="loadgen-injected permanent fault",
            mode=spec.fail_mode,
            seed=spec.seed,
        )

    if spec.workers:
        # Multi-process data plane: the parent stays the admission /
        # coalescing tier; lowering and device math run in workers.
        from repro.mp import MpTpuServer

        server = MpTpuServer(platform, config, workers=spec.workers, clock=clock)
    else:
        server = TpuServer(platform, config, clock=clock)

    results: dict = {}
    start = clock()
    async with server:
        await asyncio.gather(
            *(
                _client(server, tenant, reqs, results, spec)
                for tenant, reqs in per_tenant.items()
            )
        )
        await server.drain()
        snapshot = server.snapshot()
    wall = clock() - start

    mismatches = 0
    if spec.verify:
        # Solo reference: a fresh Tensorizer lowering each request alone
        # must be bit-identical to whatever the (possibly coalesced,
        # possibly retried) serving path delivered.
        reference = Tensorizer(platform.config.edgetpu, cpu=platform.cpu)
        for tenant, reqs in per_tenant.items():
            for i, request in enumerate(reqs):
                got = results.get((tenant, i))
                if got is None:
                    continue
                want = reference.lower(request).result
                if not np.array_equal(got, want):
                    mismatches += 1
    delivered_by_tenant = {
        tenant: results.get(("__delivered__", tenant), 0) for tenant in per_tenant
    }
    return LoadgenResult(
        snapshot=snapshot,
        wall_seconds=wall,
        mismatches=mismatches,
        delivered_by_tenant=delivered_by_tenant,
    )


def run_loadgen(
    spec: Optional[LoadgenSpec] = None,
    *,
    clock: Callable[[], float] = time.monotonic,
) -> LoadgenResult:
    """Run one scenario to completion on a private event loop.

    ``clock`` is injectable (the same contract as ``DevicePool``): the
    reported wall time and the server's internal time base both read it,
    so tests can pin a deterministic fake clock instead of racing
    ``time.monotonic()``.
    """
    return asyncio.run(_run(spec or LoadgenSpec(), clock))


# -- sustained open-loop runs ----------------------------------------------


@dataclass(frozen=True)
class SustainedSpec:
    """One sustained open-loop scenario (hours compressed to seconds)."""

    tpus: int = 8
    #: Worker processes (0 = in-process asyncio server).  Only the
    #: in-process server is bit-for-bit reproducible; the MP run asserts
    #: invariants instead (its cross-process ordering is real).
    workers: int = 0
    requests: int = 100_000
    #: Open-loop arrival rate in model requests/second.  10⁵ requests at
    #: 40/s compress ~42 model-minutes into one run.
    rate: float = 40.0
    seed: int = 7
    #: Relative traffic share per tier-named tenant.
    tier_shares: Dict[str, float] = field(
        default_factory=lambda: {"gold": 0.2, "silver": 0.3, "bronze": 0.5}
    )
    gold_budget: float = 0.5
    silver_budget: float = 2.0
    bronze_budget: float = 8.0
    #: Lognormal request-shape mix (median GEMM side, tail width).
    size_median: float = 64.0
    size_sigma: float = 0.6
    max_queue_depth: int = 256
    #: Arrivals submitted between cooperative-scheduler grants; with
    #: ``ticks`` this is the run's service-capacity model (each grant
    #: lets the dispatch loop and device pool make progress).  Keep
    #: ``burst / rate`` well under ``gold_budget`` or gold expires on
    #: scheduling granularity alone.
    burst: int = 8
    ticks: int = 2
    #: Real seconds awaited per tick grant.  0 keeps grants as pure
    #: cooperative yields (the bit-for-bit asyncio mode); MP runs need a
    #: small positive value so worker processes get wall time to answer
    #: between virtual-clock jumps.
    tick_seconds: float = 0.0
    #: Fail-stop churn: kill this device permanently after N
    #: instructions (0 = off).
    fail_after_instructions: int = 0
    fail_device: int = 1
    #: SDC churn: silently corrupt this device's tiles N times (0 = off);
    #: pair with ``integrity="abft"`` so the server catches them.
    sdc_after_instructions: int = 0
    sdc_failures: int = 4
    sdc_device: int = 2
    integrity: str = "off"
    shard: str = "off"
    energy_aware: bool = False
    #: Dispatch groups per GEMM.  1 keeps requests unshardable (pure
    #: throughput mode); >1 gives the shard planner material so an
    #: ``energy_aware`` run can trade deadline slack for joules.
    gemm_chunks: int = 1
    high_watermark: float = 0.6
    low_watermark: float = 0.3
    preempt: bool = True


@dataclass
class SustainedResult:
    """Outcome of one :func:`run_sustained` scenario."""

    snapshot: dict
    #: SHA-256 over (schedule fingerprint + per-arrival outcome codes):
    #: the whole run's identity.  Stable across reruns of the in-process
    #: server with the same spec.
    digest: str
    schedule_digest: str
    #: Outcome code counts: D delivered, T timeout, F failed, S shed,
    #: Q queue-full.
    outcomes: Dict[str, int]
    #: Per-tier table: counts, latency percentiles, joules/request.
    tier_table: Dict[str, dict]
    #: Run-level energy decomposition (§8.1: idle + active over model time).
    energy: dict
    model_seconds: float
    wall_seconds: float
    #: Human-readable invariant violations (empty on a clean run).
    violations: List[str]


class _VirtualClock:
    """A settable model-time clock (the injectable-clock contract)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _sustained_policy(spec: SustainedSpec) -> SloPolicy:
    return SloPolicy(
        tiers=gold_silver_bronze(
            spec.gold_budget, spec.silver_budget, spec.bronze_budget
        ),
        tenant_tiers={name: name for name in spec.tier_shares},
        high_watermark=spec.high_watermark,
        low_watermark=spec.low_watermark,
        preempt=spec.preempt,
    )


async def _run_sustained(spec: SustainedSpec) -> SustainedResult:
    schedule = build_schedule(
        requests=spec.requests,
        rate=spec.rate,
        seed=spec.seed,
        tenant_shares=spec.tier_shares,
        size_median=spec.size_median,
        size_sigma=spec.size_sigma,
    )
    policy = _sustained_policy(spec)
    clock = _VirtualClock()
    platform = Platform.with_tpus(spec.tpus)
    if spec.fail_after_instructions > 0:
        platform.devices[spec.fail_device % spec.tpus].inject_fault(
            after_instructions=spec.fail_after_instructions,
            failures=-1,
            reason="sustained fail-stop churn",
            mode="fail-stop",
            seed=spec.seed,
        )
    if spec.sdc_after_instructions > 0:
        platform.devices[spec.sdc_device % spec.tpus].inject_fault(
            after_instructions=spec.sdc_after_instructions,
            failures=spec.sdc_failures,
            reason="sustained SDC churn",
            mode="bitflip",
            seed=spec.seed + 1,
        )
    config = ServeConfig(
        max_queue_depth=spec.max_queue_depth,
        # Model time is entirely virtual: real-time device sleeps would
        # interleave wall-clock timers into the event loop and break
        # bit-for-bit reproducibility of the outcome stream.
        time_scale=0.0,
        breaker_cooldown=0.05,
        quarantine_seconds=0.05,
        integrity=spec.integrity,
        shard=spec.shard,
        slo=policy,
        energy_aware=spec.energy_aware,
    )
    if spec.workers:
        from repro.mp import MpTpuServer

        server = MpTpuServer(platform, config, workers=spec.workers, clock=clock)
    else:
        server = TpuServer(platform, config, clock=clock)

    # One shared weight matrix per ladder size: keeps the stream
    # coalescible and the plan cache warm, like real shared-model serving.
    rng = np.random.default_rng(spec.seed + 3)
    sizes = sorted({a.size for a in schedule.arrivals})
    weights = {
        n: rng.integers(-64, 64, size=(n, n)).astype(np.float32) for n in sizes
    }

    codes = ["?"] * spec.requests
    shed_audit: List[Tuple[int, Optional[int]]] = []
    deliver_counts: Counter = Counter()

    def observe(event: str, serve_id: int, device: int) -> None:
        if event == "deliver":
            deliver_counts[serve_id] += 1

    def on_done(index: int):
        def callback(fut: "asyncio.Future") -> None:
            exc = fut.exception()
            if exc is None:
                codes[index] = "D"
            elif isinstance(exc, RequestTimeout):
                codes[index] = "T"
            else:
                codes[index] = "F"

        return callback

    wall_start = time.monotonic()
    async with server:
        server.pool.observer = observe
        prio_of = {name: policy.tier_of(name).priority for name in spec.tier_shares}
        for index, arrival in enumerate(schedule.arrivals):
            clock.now = arrival.at
            size = arrival.size
            request = OperationRequest(
                task_id=0,
                opcode=Opcode.CONV2D,
                inputs=(
                    rng.integers(-64, 64, size=(size, size)).astype(np.float32),
                    weights[size],
                ),
                quant=QuantMode.SCALE,
                attrs={"gemm": True, "gemm_chunks": spec.gemm_chunks},
                tenant=arrival.tenant,
            )
            try:
                fut = server.submit_nowait(request)
            except LoadShed:
                codes[index] = "S"
                if server.overload is not None:
                    shed_audit.append(
                        (prio_of[arrival.tenant], server.overload.shed_floor())
                    )
                continue
            except QueueFull:
                codes[index] = "Q"
                continue
            fut.add_done_callback(on_done(index))
            if (index + 1) % spec.burst == 0:
                for _ in range(spec.ticks):
                    await asyncio.sleep(spec.tick_seconds)
        await server.drain()
        # Callbacks fire one loop turn after the resolving future; give
        # the loop a couple of turns so every code lands.
        for _ in range(4):
            await asyncio.sleep(0)
        snapshot = server.snapshot()
    wall = time.monotonic() - wall_start
    model_seconds = schedule.span_seconds

    outcomes = dict(Counter(codes))
    violations: List[str] = []
    if "?" in outcomes:
        violations.append(f"{outcomes['?']} requests never resolved")
    lost = snapshot["outcomes"].get("lost", 0)
    if lost:
        violations.append(f"accounting lost {lost} requests")
    duplicates = [sid for sid, n in deliver_counts.items() if n > 1]
    if duplicates:
        violations.append(
            f"{len(duplicates)} serve ids delivered more than once"
        )
    for priority, floor in shed_audit:
        if floor is None or priority < floor:
            violations.append(
                f"shed a priority-{priority} request below floor {floor}"
            )
            break

    # Per-tier table + §8.1 energy decomposition over model time.
    energy_model = EnergyModel(platform.config)
    tpu_watts = energy_model.active_power_watts("tpu0")
    idle_watts = energy_model.idle_power_watts()
    tiers = snapshot.get("tiers", {})
    total_completed = sum(t.get("completed", 0) for t in tiers.values()) or 1
    total_busy = 0.0
    tier_table: Dict[str, dict] = {}
    for name, stats in sorted(tiers.items()):
        completed = stats.get("completed", 0)
        busy = stats.get("busy_seconds", 0.0)
        total_busy += busy
        latency = stats.get("latency") or {}
        active_j = busy * tpu_watts
        idle_j = idle_watts * model_seconds * (completed / total_completed)
        tier_table[name] = {
            "submitted": stats.get("submitted", 0),
            "completed": completed,
            "shed": stats.get("shed", 0),
            "deadline_misses": stats.get("deadline_misses", 0),
            "p99_seconds": latency.get("p99_seconds"),
            "p999_seconds": latency.get("p999_seconds"),
            "busy_seconds": busy,
            "active_joules_per_request": (
                active_j / completed if completed else None
            ),
            "joules_per_request": (
                (active_j + idle_j) / completed if completed else None
            ),
        }
    budgets = {
        "gold": spec.gold_budget,
        "silver": spec.silver_budget,
        "bronze": spec.bronze_budget,
    }
    for name, row in tier_table.items():
        budget = budgets.get(name)
        if budget is None:
            continue
        for key in ("p99_seconds", "p999_seconds"):
            value = row.get(key)
            if value is not None and value > budget:
                violations.append(
                    f"{name} {key} {value:.3f}s exceeds budget {budget}s"
                )
    energy = {
        "model_seconds": model_seconds,
        "idle_joules": idle_watts * model_seconds,
        "active_joules": total_busy * tpu_watts,
        "energy_plans": snapshot.get("sharding", {}).get("energy_plans", 0),
    }

    h = hashlib.sha256()
    h.update(schedule.digest().encode())
    h.update("".join(codes).encode())
    return SustainedResult(
        snapshot=snapshot,
        digest=h.hexdigest(),
        schedule_digest=schedule.digest(),
        outcomes=outcomes,
        tier_table=tier_table,
        energy=energy,
        model_seconds=model_seconds,
        wall_seconds=wall,
        violations=violations,
    )


def run_sustained(spec: Optional[SustainedSpec] = None) -> SustainedResult:
    """Run one sustained open-loop scenario on a private event loop."""
    return asyncio.run(_run_sustained(spec or SustainedSpec()))
