"""SLO tiers and the overload-shedding governor.

Production serving over edge TPUs degrades by *tenant class*, not by
collapse: when sustained open-loop traffic outruns the pool, the lowest
tier is shed first (typed :class:`~repro.errors.LoadShed`, distinct from
a capacity :class:`~repro.errors.QueueFull`), the highest tier keeps its
deadline budget, and the system recovers automatically once pressure
releases.  Three pieces:

* :class:`SloTier` — a named class with a *priority* (lower = more
  important), a default *deadline budget*, and whether the overload
  controller may shed it at all (gold is never shed);
* :class:`SloPolicy` — the tier table plus tenant→tier assignment and
  the overload thresholds; attaching one to
  :class:`~repro.serve.server.ServeConfig` switches admission from
  round-robin to earliest-deadline-first and arms shedding/preemption;
* :class:`OverloadController` — a hysteresis governor over admission
  queue depth and a deadline-miss EWMA.  Escalation is immediate (one
  observation past the high watermark engages the next shed level);
  release requires the depth to fall under the low watermark *and* the
  miss EWMA to decay, so the shed set does not flap at the boundary.

Everything here is deterministic: shed decisions are pure functions of
(queue depth, miss EWMA, tier), so a seeded open-loop run reproduces
its shed set bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SloTier:
    """One service class."""

    name: str
    #: Scheduling priority; lower values drain first under EDF ties and
    #: are preferred by preemption.  Must be unique across a policy.
    priority: int
    #: Default per-request deadline budget (seconds on the server's
    #: clock) applied when the client supplies none.
    deadline_budget: Optional[float] = None
    #: May the overload controller shed this tier?  The top tier should
    #: set False — gold is degraded only by physics, never by policy.
    sheddable: bool = True


def gold_silver_bronze(
    gold_budget: float = 0.5,
    silver_budget: float = 2.0,
    bronze_budget: float = 8.0,
) -> Tuple[SloTier, ...]:
    """The canonical three-class ladder used by the sustained loadgen."""
    return (
        SloTier("gold", priority=0, deadline_budget=gold_budget, sheddable=False),
        SloTier("silver", priority=1, deadline_budget=silver_budget),
        SloTier("bronze", priority=2, deadline_budget=bronze_budget),
    )


@dataclass(frozen=True)
class SloPolicy:
    """Tier table + tenant assignment + overload thresholds."""

    tiers: Tuple[SloTier, ...] = field(default_factory=gold_silver_bronze)
    #: tenant name -> tier name; unlisted tenants get ``default_tier``.
    tenant_tiers: Dict[str, str] = field(default_factory=dict)
    default_tier: str = "bronze"
    #: Queue-depth fraction (of admission capacity) that engages the
    #: first shed level; deeper pressure escalates one sheddable tier
    #: per additional ``(1 - high) / n_sheddable`` fraction.
    high_watermark: float = 0.6
    #: Depth fraction the queue must fall under before a level releases.
    low_watermark: float = 0.3
    #: Deadline-miss EWMA smoothing factor per dispatch turn.
    miss_alpha: float = 0.2
    #: Miss-EWMA (misses per drained request) that engages shedding even
    #: when the queue itself looks shallow (slow-death overload).
    miss_threshold: float = 0.25
    #: Arm preemption of not-yet-dispatched lower-priority groups when a
    #: higher-priority request is waiting.
    preempt: bool = True

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("SloPolicy needs at least one tier")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        prios = [t.priority for t in self.tiers]
        if len(set(prios)) != len(prios):
            raise ValueError(f"duplicate tier priorities: {prios}")
        if not 0.0 <= self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError(
                f"need 0 <= low <= high <= 1, got "
                f"{self.low_watermark} / {self.high_watermark}"
            )
        if self.default_tier not in names:
            raise ValueError(f"default_tier {self.default_tier!r} not in {names}")
        for tenant, tier in self.tenant_tiers.items():
            if tier not in names:
                raise ValueError(f"tenant {tenant!r} maps to unknown tier {tier!r}")

    def tier_of(self, tenant: str) -> SloTier:
        """Resolve one tenant to its tier (default tier when unlisted)."""
        name = self.tenant_tiers.get(tenant, self.default_tier)
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise KeyError(name)  # unreachable: __post_init__ validated

    def sheddable_priorities(self) -> List[int]:
        """Sheddable tier priorities, worst (largest) first."""
        return sorted(
            (t.priority for t in self.tiers if t.sheddable), reverse=True
        )


class OverloadController:
    """Hysteresis shed governor: depth watermarks + miss EWMA.

    ``level`` counts how many sheddable tiers are currently shed,
    worst-first: level 1 sheds only the lowest tier, level 2 the lowest
    two, and so on.  Unsheddable tiers are never in the shed set at any
    level.
    """

    def __init__(self, policy: SloPolicy, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.policy = policy
        self.capacity = capacity
        #: Sheddable priorities, worst first (level k sheds the first k).
        self._ladder = policy.sheddable_priorities()
        self.level = 0
        self.miss_ewma = 0.0
        #: Lifetime count of level escalations (observability).
        self.escalations = 0

    def _target_level(self, depth_fraction: float) -> int:
        """Shed level the depth alone calls for (no hysteresis)."""
        if not self._ladder or depth_fraction < self.policy.high_watermark:
            return 0
        span = 1.0 - self.policy.high_watermark
        step = span / len(self._ladder) if span > 0 else 0.0
        if step <= 0:
            return len(self._ladder)
        over = depth_fraction - self.policy.high_watermark
        return min(int(over / step) + 1, len(self._ladder))

    def observe(self, depth: int, misses: int, drained: int) -> int:
        """Feed one dispatch-turn observation; returns the new level.

        *misses* is the count of deadline expiries seen this turn and
        *drained* the requests dispatched; their ratio feeds the EWMA.
        """
        if misses or drained:
            rate = misses / max(misses + drained, 1)
            a = self.policy.miss_alpha
            self.miss_ewma = (1.0 - a) * self.miss_ewma + a * rate
        frac = depth / self.capacity
        target = self._target_level(frac)
        if self.miss_ewma >= self.policy.miss_threshold:
            target = max(target, 1)
        if target > self.level:
            self.escalations += target - self.level
            self.level = target
        elif (
            self.level > 0
            and frac <= self.policy.low_watermark
            and self.miss_ewma < self.policy.miss_threshold / 2.0
        ):
            self.level -= 1  # release one step per calm turn
        return self.level

    def shed_floor(self) -> Optional[int]:
        """Lowest (numerically) priority currently shed, or None.

        Priorities >= the floor are shed; smaller priorities (more
        important tiers) are admitted.
        """
        if self.level == 0 or not self._ladder:
            return None
        return self._ladder[self.level - 1]

    def should_shed(self, priority: int, sheddable: bool) -> bool:
        """Is a request of this tier shed under the current level?"""
        if not sheddable:
            return False
        floor = self.shed_floor()
        return floor is not None and priority >= floor

    def snapshot(self) -> dict:
        """JSON-friendly governor state."""
        return {
            "level": self.level,
            "miss_ewma": self.miss_ewma,
            "escalations": self.escalations,
            "shed_floor": self.shed_floor(),
        }
