"""Fault-tolerant dispatch of lowered groups onto the simulated TPUs.

A :class:`DevicePool` owns one router task and one worker task per
Edge TPU.  The router assigns each :class:`DispatchWork` item to the
least-loaded healthy device (work-conserving FCFS, like the DES
executor's shared-queue workers); workers charge the group's modeled
service time (:func:`repro.runtime.executor.group_service_seconds`)
against real time and drive the fault-tolerance machinery:

* **fault hook** — each device's :meth:`check_fault` runs before a
  group is charged; an armed injector raises
  :class:`~repro.errors.DeviceFailure` mid-stream;
* **preemption** (:meth:`DevicePool.preempt`) — a higher-priority batch
  may pull *not-yet-started* lower-priority requests back out of the
  device queues; every removed group retires here and the owning
  request is handed back to the caller for un-coalescing and
  re-admission, so exactly-once is untouched (requests with any group
  already started on a device are never preempted);
* **bounded retries** — a failed group is requeued onto a different
  device (the observed-failed one is excluded) up to ``max_retries``
  times before the owning request fails;
* **circuit breaker** — ``breaker_threshold`` consecutive failures open
  a device's breaker for ``breaker_cooldown`` real seconds; an open
  device receives no work, and a half-open probe follows the cooldown;
* **integrity verification** (``integrity="abft"|"vote"``) — after a
  group's service time is charged, the worker transmits the operation's
  expected int8 tiles through the device's modeled PCIe return path
  (where armed corruption injectors silently mangle bytes) and checks
  them against the Tensorizer's recorded checksums (or a witness
  device's copy, in ``vote`` mode).  A detection fails the group
  *without* write-back, feeds the device's **quarantine** score
  (distinct from the circuit breaker — see
  :class:`repro.integrity.QuarantineManager`), and requeues the work
  elsewhere; only cleanly verified tiles are written into the
  delivered result, so delivered bytes are bit-identical to a clean
  run.

Delivery is exactly-once by construction: group completions decrement
the owning request's outstanding count, and both resolve and reject
paths go through the :class:`ServeRequest` once-only guards.

The pool exposes a campaign hook: assign :attr:`DevicePool.observer`
before :meth:`DevicePool.start` and every lifecycle transition
(``dispatch``, ``failure``, ``retry``, ``give-up``, ``timeout``,
``deliver``, ``bounce``, ``drop``, ``sdc``, ``migrate``) is reported
with its serve ID and device.  The conformance fault-injection campaigns replay these
event streams to prove the zero-lost / exactly-once invariants from the
outside rather than trusting the pool's own counters.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.errors import DeviceFailure, RequestTimeout, SilentDataCorruption
from repro.host.platform import Platform
from repro.integrity import IntegrityVerifier, QuarantineManager
from repro.runtime.executor import group_service_seconds
from repro.runtime.scheduler import DispatchGroup, SchedulePolicy
from repro.serve.metrics import ServingMetrics
from repro.serve.request import ServeRequest
from repro.shard.merge import MergeError
from repro.shard.profile import ShardProfile
from repro.telemetry import SpanTracer, get_tracer

#: Signature of the campaign hook: ``observer(event, serve_id, device)``.
#: ``device`` is the TPU index the event concerns, or -1 when the event
#: is not bound to one (router drops, give-ups after the last retry).
DispatchObserver = Callable[[str, int, int], None]


@dataclass
class DispatchWork:
    """One dispatch group bound to its owning request."""

    group: DispatchGroup
    sreq: ServeRequest
    attempts: int = 0
    #: Devices observed failing this work item (never re-tried first).
    excluded: Set[int] = field(default_factory=set)
    #: Integrity-verification failures this work item has survived; a
    #: later clean delivery counts as an SDC *correction*.
    sdc_attempts: int = 0
    #: Shard placement (repro.shard): the planner's preferred device.
    #: The router honors the hint while that device is schedulable and
    #: migrates the work (counting it) when it is not.
    device_hint: Optional[int] = None
    #: Index of the owning shard segment, or None when unsharded.
    segment: Optional[int] = None
    #: Output row span this group produces ``[start, stop)``; drives
    #: the row-merge buffer on delivery.
    rows: Optional[Tuple[int, int]] = None


class CircuitBreaker:
    """Consecutive-failure breaker with a real-time cooldown."""

    def __init__(
        self,
        threshold: int,
        cooldown_seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_seconds < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown_seconds}")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self.consecutive_failures = 0
        self.opened = 0  # lifetime count of open transitions
        self._open_until: Optional[float] = None

    @property
    def is_open(self) -> bool:
        """True while the device is quarantined."""
        return self._open_until is not None and self._clock() < self._open_until

    @property
    def reopens_at(self) -> Optional[float]:
        """Monotonic instant the breaker half-opens, or None when closed.

        A breaker that has never opened (or has fully re-closed after a
        success) has no pending release instant; returning a ``-1.0``
        sentinel here used to leak a fake "monotonic instant" into
        snapshots and min()-style release computations.
        """
        return self._open_until if self.is_open else None

    def record_failure(self) -> None:
        """Count a failure; open the breaker at the threshold."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            self._open_until = self._clock() + self.cooldown_seconds
            self.opened += 1
            # Half-open probe: one more failure re-opens immediately.
            self.consecutive_failures = self.threshold - 1

    def record_success(self) -> None:
        """A completed group closes the breaker fully."""
        self.consecutive_failures = 0
        self._open_until = None


class DevicePool:
    """Router + per-device workers over a platform's simulated TPUs."""

    def __init__(
        self,
        platform: Platform,
        metrics: ServingMetrics,
        *,
        policy: Optional[SchedulePolicy] = None,
        max_retries: int = 3,
        breaker_threshold: int = 2,
        breaker_cooldown: float = 0.05,
        time_scale: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[SpanTracer] = None,
        integrity: str = "off",
        quarantine_seconds: float = 0.05,
        quarantine_threshold: float = 1.0,
        shard_profile: Optional[ShardProfile] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        if integrity not in ("off", "abft", "vote"):
            raise ValueError(
                f"integrity must be 'off', 'abft' or 'vote', got {integrity!r}"
            )
        self.platform = platform
        self.metrics = metrics
        self.policy = policy or SchedulePolicy()
        self.max_retries = max_retries
        self.time_scale = time_scale
        #: SDC-defense mode; "off" skips verification entirely.
        self.integrity = integrity
        self._verifier = IntegrityVerifier(integrity) if integrity != "off" else None
        #: Suspicion scores / quarantine state, present only when the
        #: integrity layer is on (shares the pool's injectable clock).
        self.quarantine: Optional[QuarantineManager] = (
            QuarantineManager(
                platform.num_tpus,
                clock=clock,
                threshold=quarantine_threshold,
                quarantine_seconds=quarantine_seconds,
            )
            if integrity != "off"
            else None
        )
        #: The pool's single time base.  Deadline checks, breaker
        #: cooldowns, and latency accounting all read this clock — a
        #: fake clock in tests therefore governs *every* time decision.
        self._clock = clock
        self._tracer = tracer if tracer is not None else get_tracer()
        #: Per-device execution profile the segmentation planner reads;
        #: workers feed it one observation per successfully executed
        #: group (the span-profile loop of arXiv 2503.01025).
        self.shard_profile = shard_profile
        self.breakers = [
            CircuitBreaker(breaker_threshold, breaker_cooldown, clock=clock)
            for _ in range(platform.num_tpus)
        ]
        self._inbox: "asyncio.Queue[DispatchWork]" = asyncio.Queue()
        self._device_queues: List["asyncio.Queue[DispatchWork]"] = [
            asyncio.Queue() for _ in range(platform.num_tpus)
        ]
        self._tasks: List["asyncio.Task"] = []
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: Campaign hook; see the module docstring.  Exceptions it raises
        #: are deliberately NOT swallowed — a conformance assertion firing
        #: inside the hook must fail the run, not vanish into a worker.
        self.observer: Optional[DispatchObserver] = None
        # Uncontended host<->device transfer latency per device path.
        self._transfer_fns = [
            self._make_transfer_fn(i) for i in range(platform.num_tpus)
        ]

    def _make_transfer_fn(self, tpu_index: int) -> Callable[[int], float]:
        links = self.platform.topology.path_links(tpu_index)

        def transfer_seconds(nbytes: int) -> float:
            if nbytes <= 0:
                return 0.0
            return sum(link.occupancy_seconds(nbytes) for link in links)

        return transfer_seconds

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the router and one worker per device (idempotent)."""
        if self._tasks:
            return
        loop = asyncio.get_running_loop()
        self._tasks.append(loop.create_task(self._router(), name="serve-router"))
        for i in range(self.platform.num_tpus):
            self._tasks.append(
                loop.create_task(self._worker(i), name=f"serve-worker-tpu{i}")
            )

    async def stop(self) -> None:
        """Cancel router and workers; pending work is abandoned."""
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def drain(self) -> None:
        """Wait until every submitted work item has retired."""
        await self._idle.wait()

    @property
    def in_flight(self) -> int:
        """Work items submitted but not yet retired."""
        return self._in_flight

    # -- submission -----------------------------------------------------

    def submit(self, work: DispatchWork) -> None:
        """Queue one dispatch group for routing."""
        self._in_flight += 1
        self._idle.clear()
        self._inbox.put_nowait(work)

    def _retire(self) -> None:
        self._in_flight -= 1
        if self._in_flight == 0:
            self._idle.set()

    def preempt(self, below_priority: int) -> List[ServeRequest]:
        """Remove queued work of strictly lower priority; return owners.

        Eligibility is conservative: a request is pulled only when *all*
        its outstanding groups are still sitting in the router inbox or
        a device queue and none has started executing — preempting work
        a device already touched would force re-execution and break the
        busy/exactly-once accounting.  Removed groups retire here; the
        caller resets the request's lowering state and re-admits it.
        """
        queues: List["asyncio.Queue[DispatchWork]"] = [
            self._inbox, *self._device_queues
        ]
        queued: dict = {}
        for queue in queues:
            for work in queue._queue:  # deque snapshot; loop not running here
                queued.setdefault(work.sreq.serve_id, []).append(work)
        victims: Set[int] = set()
        owners: List[ServeRequest] = []
        for serve_id, works in queued.items():
            sreq = works[0].sreq
            if (
                sreq.priority > below_priority
                and not sreq.failed
                and sreq.started == 0
                and len(works) == sreq.outstanding
            ):
                victims.add(serve_id)
                owners.append(sreq)
        if not victims:
            return []
        for queue in queues:
            kept: List[DispatchWork] = []
            while True:
                try:
                    kept.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for work in kept:
                if work.sreq.serve_id in victims:
                    self._retire()
                else:
                    queue.put_nowait(work)
        for sreq in owners:
            self._emit("preempt", sreq)
        return owners

    def _emit(self, event: str, sreq: ServeRequest, device: int = -1) -> None:
        if self.observer is not None:
            self.observer(event, sreq.serve_id, device)
        if self._tracer.enabled and event != "dispatch":
            # "dispatch" is subsumed by the worker's exec span; the rest
            # are lifecycle instants (retry, timeout, breaker bounce...).
            self._tracer.instant(
                event,
                cat="serve.lifecycle",
                track=f"tpu{device}" if device >= 0 else "router",
                serve_id=sreq.serve_id,
            )

    # -- routing --------------------------------------------------------

    def _available(self, index: int) -> bool:
        """Schedulable: breaker closed AND not under SDC quarantine."""
        if self.breakers[index].is_open:
            return False
        if self.quarantine is not None and self.quarantine.is_quarantined(index):
            return False
        return True

    def available_devices(self) -> List[int]:
        """Currently schedulable device indices (the planner's pool)."""
        return [i for i in range(len(self.breakers)) if self._available(i)]

    def _candidates(self, work: DispatchWork) -> List[int]:
        """Healthy routing targets, preferring never-failed devices."""
        ready = self.available_devices()
        fresh = [i for i in ready if i not in work.excluded]
        # Fall back to a previously failed device only when nothing else
        # is available (single-TPU pools, transient faults).
        return fresh or ready

    async def _router(self) -> None:
        while True:
            work = await self._inbox.get()
            if work.sreq.failed:
                self._emit("drop", work.sreq)
                self._retire()
                continue
            while True:
                candidates = self._candidates(work)
                if candidates:
                    if work.device_hint in candidates:
                        pick = work.device_hint
                    else:
                        pick = min(
                            candidates,
                            key=lambda i: self._device_queues[i].qsize(),
                        )
                        if work.device_hint is not None:
                            # The planned device is excluded, breaker-open
                            # or quarantined: the segment migrates to the
                            # least-loaded survivor and re-pins there.
                            work.device_hint = pick
                            self.metrics.shard_migrations += 1
                            self._emit("migrate", work.sreq, pick)
                    self._device_queues[pick].put_nowait(work)
                    break
                # Every device is unavailable (breaker open or
                # quarantined): wait for the earliest release instant —
                # breaker half-open or quarantine probation — then
                # re-evaluate.
                releases = [
                    r for r in (b.reopens_at for b in self.breakers) if r is not None
                ]
                if self.quarantine is not None:
                    releases += [
                        self.quarantine.release_at(i)
                        for i in range(len(self.breakers))
                        if self.quarantine.is_quarantined(i)
                    ]
                reopen = min(releases) if releases else self._clock()
                delay = max(reopen - self._clock(), 0.0)
                await asyncio.sleep(min(delay, 0.05) or 0.001)

    # -- execution ------------------------------------------------------

    async def _worker(self, tpu_index: int) -> None:
        device = self.platform.devices[tpu_index]
        breaker = self.breakers[tpu_index]
        queue = self._device_queues[tpu_index]
        while True:
            work = await queue.get()
            sreq = work.sreq
            if sreq.failed:
                self._emit("drop", sreq, tpu_index)
                self._retire()
                continue
            if breaker.is_open or (
                self.quarantine is not None
                and self.quarantine.is_quarantined(tpu_index)
            ):
                # The breaker opened (or the device was quarantined)
                # after this work was queued here: bounce it back to the
                # router (not a failure, not a retry — the work never
                # touched the device).
                self._emit("bounce", sreq, tpu_index)
                self._inbox.put_nowait(work)
                continue
            now = self._clock()
            if sreq.expired(now):
                if sreq.reject(RequestTimeout(
                    f"request {sreq.serve_id} expired before dispatch"
                )):
                    self.metrics.record_timeout(sreq)
                self._emit("timeout", sreq, tpu_index)
                self._retire()
                continue
            sreq.started += 1  # past this point the request is not preemptible
            span = self._tracer.begin(
                "exec_group",
                cat="device",
                track=device.name,
                serve_id=sreq.serve_id,
                attempt=work.attempts,
                instructions=work.group.instruction_count,
            )
            seg_span = None
            if work.segment is not None:
                seg_span = self._tracer.begin(
                    "segment_exec",
                    cat="shard",
                    track=device.name,
                    serve_id=sreq.serve_id,
                    segment=work.segment,
                    rows=list(work.rows) if work.rows is not None else None,
                    instructions=work.group.instruction_count,
                )
            try:
                # Fault hook: an armed injector trips here, modeling the
                # device dying while holding the group.
                self._emit("dispatch", sreq, tpu_index)
                device.check_fault(work.group.instruction_count)
                cost = group_service_seconds(
                    work.group, device, self._transfer_fns[tpu_index], self.policy
                )
                if cost.service_seconds > 0 and self.time_scale > 0:
                    await asyncio.sleep(cost.service_seconds * self.time_scale)
                else:
                    await asyncio.sleep(0)
            except DeviceFailure as exc:
                self._tracer.end(span.set(outcome="failure"))
                if seg_span is not None:
                    self._tracer.end(seg_span.set(outcome="failure"))
                opened_before = breaker.opened
                breaker.record_failure()
                if breaker.opened > opened_before:
                    self._tracer.instant(
                        "breaker_open",
                        cat="serve.lifecycle",
                        track=device.name,
                        serve_id=sreq.serve_id,
                    )
                self.metrics.record_device_failure(device.name)
                self._emit("failure", sreq, tpu_index)
                self._requeue(work, tpu_index, exc)
                continue
            # Integrity verification: transmit the group's expected
            # tiles through the device's wire-return path (where armed
            # corruption injectors fire) and compare against the plan's
            # checksums.  Detection means the device answered with wrong
            # bytes: no write-back, no success accounting — the group is
            # requeued elsewhere and the device's quarantine score (not
            # its breaker) takes the hit.
            plan = getattr(sreq.op, "integrity", None)
            if self._verifier is not None and plan is not None:
                vspan = self._tracer.begin(
                    "verify_group",
                    cat="integrity",
                    track=device.name,
                    serve_id=sreq.serve_id,
                )
                witness_index = (
                    self._pick_witness(tpu_index)
                    if self._verifier.mode == "vote"
                    else None
                )
                witness = (
                    None
                    if witness_index is None
                    else self.platform.devices[witness_index]
                )
                verdict = self._verifier.verify_op(
                    plan,
                    [instr.label for instr in work.group.instrs],
                    device,
                    witness,
                )
                self.metrics.tiles_verified += verdict.checked
                if verdict.witness_flags and witness_index is not None:
                    # Vote adjudication: this device's copy passed the
                    # checksums, the witness's did not — the group still
                    # delivers, but the witness is caught corrupting.
                    self.metrics.vote_adjudications += verdict.witness_flags
                    self._record_sdc(witness_index, verdict.witness_flags, sreq)
                if not verdict.ok:
                    self._tracer.end(
                        vspan.set(outcome="sdc", detections=len(verdict.detections))
                    )
                    self._tracer.end(span.set(outcome="sdc"))
                    if seg_span is not None:
                        self._tracer.end(seg_span.set(outcome="sdc"))
                    self._record_sdc(tpu_index, len(verdict.detections), sreq)
                    work.sdc_attempts += 1
                    worst = verdict.detections[0]
                    self._requeue(work, tpu_index, SilentDataCorruption(
                        f"{device.name}: {len(verdict.detections)} corrupted "
                        f"tile(s) detected by {worst.kind} check "
                        f"(max deviation {worst.max_deviation:.1f} quanta)",
                        device=device.name,
                        detections=len(verdict.detections),
                    ))
                    continue
                # Clean: install the verified device-returned bytes into
                # the delivered result (bit-identical to the host's own
                # requantize for an honest transmission).
                verdict.apply(sreq.op.result)
                if self.quarantine is not None:
                    self.quarantine.record_clean(tpu_index)
                if work.sdc_attempts:
                    self.metrics.sdc_corrected += 1
                self._tracer.end(vspan.set(outcome="ok", tiles=verdict.checked))
            # Success: accounting, then exactly-once delivery.  The span
            # carries the group's *modeled* device seconds only on this
            # path, mirroring busy_by_device — failed attempts charge no
            # device time, so trace totals reconcile with the metrics.
            span.add_device_seconds(cost.exec_seconds)
            self._tracer.end(
                span.set(outcome="ok", service_seconds=cost.service_seconds)
            )
            if seg_span is not None:
                self._tracer.end(
                    seg_span.set(outcome="ok", service_seconds=cost.service_seconds)
                )
            device.instructions_executed += work.group.instruction_count
            device.busy_seconds += cost.exec_seconds
            breaker.record_success()
            self.metrics.record_group(
                device.name,
                cost.exec_seconds,
                cost.bytes_in,
                cost.bytes_out,
                tier=sreq.tier,
            )
            if self.shard_profile is not None:
                # Feed the segmentation profile the same observation the
                # exec_group span records: this group's instructions took
                # this modeled service time on this device.
                self.shard_profile.observe(
                    tpu_index, work.group.instruction_count, cost.service_seconds
                )
            if work.rows is not None and sreq.merge is not None:
                # Install this group's verified output rows; overlap
                # would mean a duplicated delivery and raises loudly.
                sreq.merge.write(
                    work.rows[0],
                    work.rows[1],
                    sreq.op.result[work.rows[0]:work.rows[1]],
                )
            sreq.outstanding -= 1
            if sreq.outstanding == 0:
                # Deadline holds at *delivery*, not just at dispatch: a
                # result computed after its budget elapsed is a miss —
                # returning it late would make per-tier p99 meaningless.
                if sreq.expired(self._clock()):
                    if sreq.reject(RequestTimeout(
                        f"request {sreq.serve_id} completed after its deadline"
                    )):
                        self.metrics.record_timeout(sreq)
                    self._emit("timeout", sreq, tpu_index)
                    self._retire()
                    continue
                if sreq.merge is not None:
                    try:
                        sreq.op.result = sreq.merge.finalize()
                    except MergeError as exc:
                        if sreq.reject(exc):
                            self.metrics.failed += 1
                        self._retire()
                        continue
                    self.metrics.shard_merged += 1
                if self.metrics.record_delivery(sreq, self._clock()):
                    self._emit("deliver", sreq, tpu_index)
            self._retire()

    def _pick_witness(self, primary: int) -> Optional[int]:
        """Second device for vote mode: nearest available non-primary."""
        n = len(self.breakers)
        for step in range(1, n):
            i = (primary + step) % n
            if self._available(i):
                return i
        return None

    def _record_sdc(self, tpu_index: int, tiles: int, sreq: ServeRequest) -> None:
        """Account one SDC incident on a device (metrics + quarantine)."""
        name = self.platform.devices[tpu_index].name
        self.metrics.record_sdc(name, tiles)
        if self.quarantine is not None and self.quarantine.record_sdc(tpu_index):
            self.metrics.quarantines += 1
            self._tracer.instant(
                "quarantine",
                cat="serve.lifecycle",
                track=name,
                serve_id=sreq.serve_id,
            )
        self._emit("sdc", sreq, tpu_index)

    def _requeue(self, work: DispatchWork, tpu_index: int, exc: DeviceFailure) -> None:
        """Retry a failed group elsewhere, or fail its request."""
        work.attempts += 1
        work.excluded.add(tpu_index)
        work.sreq.retries += 1
        if work.attempts > self.max_retries:
            if work.sreq.reject(DeviceFailure(
                f"dispatch group failed {work.attempts} times, giving up: {exc}",
                device=exc.device,
            )):
                self.metrics.failed += 1
            self._emit("give-up", work.sreq)
            self._retire()
            return
        self.metrics.retries += 1
        self._emit("retry", work.sreq, tpu_index)
        self._inbox.put_nowait(work)
