"""In-flight request state for the serving layer.

A :class:`ServeRequest` wraps one client :class:`OperationRequest` from
submission to delivery: the asyncio future the client awaits, the
deadline, and the dispatch-group bookkeeping that guarantees each
request resolves **exactly once** — the serving layer's zero-lost /
zero-duplicated invariant.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.runtime.opqueue import LoweredOperation, OperationRequest

if TYPE_CHECKING:  # no runtime dependency on the shard package
    from repro.shard.merge import MergeBuffer


@dataclass
class ServeRequest:
    """One admitted client request and its lifecycle state."""

    serve_id: int
    tenant: str
    request: OperationRequest
    future: "asyncio.Future"
    #: Monotonic instant the client submitted (latency measurement base).
    submitted: float
    #: Absolute monotonic deadline, or None for no deadline.
    deadline: Optional[float] = None
    #: SLO tier name ("" when the server has no SLO policy).
    tier: str = ""
    #: Tier priority (lower = more important; EDF tiebreak + preemption).
    priority: int = 0
    #: May the overload controller shed this request at admission?
    sheddable: bool = True
    #: Dispatch groups that have started executing on a device.  A
    #: request is preemptible only while this is zero — un-coalescing
    #: work that already touched a device would break exactly-once.
    started: int = 0
    #: Times this request was preempted back into the admission queue.
    preemptions: int = 0
    #: Dispatch retries consumed across this request's groups.
    retries: int = 0
    #: Dispatch groups still in flight (set at launch).
    outstanding: int = 0
    #: Lowered form, attached by the dispatch loop.
    op: Optional[LoweredOperation] = None
    #: Row-merge buffer when the request was sharded across devices
    #: (:mod:`repro.shard.merge`); the last completing segment finalizes
    #: it into ``op.result`` before delivery.
    merge: Optional["MergeBuffer"] = None
    #: Set once the request failed; siblings still queued are dropped.
    failed: bool = field(default=False)

    def expired(self, now: float) -> bool:
        """True when the deadline has passed at monotonic instant *now*."""
        return self.deadline is not None and now > self.deadline

    def resolve(self) -> bool:
        """Deliver the functional result exactly once.

        Returns True when this call delivered it (False when the future
        was already settled — e.g. the client cancelled, or a sibling
        group already failed the request).
        """
        if self.failed or self.future.done() or self.op is None:
            return False
        self.future.set_result(self.op.result)
        return True

    def reject(self, exc: BaseException) -> bool:
        """Fail the request exactly once; later resolves become no-ops."""
        self.failed = True
        if self.future.done():
            return False
        self.future.set_exception(exc)
        return True
