"""Seeded open-loop arrival schedules for sustained serving runs.

A closed-loop load generator (each client waits for its previous
answer) can never expose overload: the offered rate collapses to the
service rate.  Sustained-load hardening needs the opposite — an
*open-loop* process where arrivals fire on schedule whether or not
earlier requests finished, so queues genuinely build and the shedding /
deadline machinery is exercised.

This module is the deterministic half of that: a Poisson arrival
process (seeded exponential inter-arrival gaps) carrying a heavy-tailed
lognormal request-shape mix, with every draw made in a fixed order from
one seeded generator — the same seed always yields the byte-identical
schedule, which :func:`ArrivalSchedule.digest` fingerprints.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

#: Request sizes snap to this ladder so a sustained run re-uses a small
#: set of shared weight matrices (plan-cache- and coalescing-friendly)
#: while the lognormal mass still lands heavy-tailed across it.
DEFAULT_SIZE_LADDER: Tuple[int, ...] = (32, 48, 64, 96, 128, 192, 256)


@dataclass(frozen=True)
class Arrival:
    """One scheduled request."""

    #: Model-time instant the request is submitted (seconds from start).
    at: float
    tenant: str
    #: Square GEMM side (m = k = n) for this request.
    size: int


@dataclass(frozen=True)
class ArrivalSchedule:
    """A full open-loop schedule, reproducible from its inputs."""

    arrivals: Tuple[Arrival, ...]
    rate: float
    seed: int

    @property
    def span_seconds(self) -> float:
        """Model time covered by the schedule."""
        return self.arrivals[-1].at if self.arrivals else 0.0

    def digest(self) -> str:
        """SHA-256 fingerprint of the schedule (times, tenants, sizes)."""
        h = hashlib.sha256()
        times = np.array([a.at for a in self.arrivals], dtype=np.float64)
        sizes = np.array([a.size for a in self.arrivals], dtype=np.int64)
        h.update(times.tobytes())
        h.update(sizes.tobytes())
        h.update("|".join(a.tenant for a in self.arrivals).encode())
        return h.hexdigest()


def poisson_times(rate: float, count: int, seed: int) -> np.ndarray:
    """Cumulative Poisson arrival instants: *count* draws at *rate*/s.

    Inter-arrival gaps are exponential with mean ``1/rate``; the return
    is the cumulative sum, so ``times[i]`` is model-time seconds from
    the start of the run.  Deterministic in (rate, count, seed).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=count)
    return np.cumsum(gaps)


def lognormal_sizes(
    count: int,
    seed: int,
    *,
    median: float = 64.0,
    sigma: float = 0.6,
    ladder: Sequence[int] = DEFAULT_SIZE_LADDER,
) -> np.ndarray:
    """Heavy-tailed GEMM sizes snapped to *ladder* (nearest rung).

    ``median`` is the lognormal median (``exp(mu)``); ``sigma`` widens
    the tail — most requests are small, a few are much larger, the
    classic serving-shape skew.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not ladder:
        raise ValueError("ladder must be non-empty")
    rng = np.random.default_rng(seed)
    raw = rng.lognormal(mean=float(np.log(median)), sigma=sigma, size=count)
    rungs = np.array(sorted(ladder), dtype=np.float64)
    idx = np.abs(raw[:, None] - rungs[None, :]).argmin(axis=1)
    return rungs[idx].astype(np.int64)


def build_schedule(
    *,
    requests: int,
    rate: float,
    seed: int,
    tenant_shares: Dict[str, float],
    size_median: float = 64.0,
    size_sigma: float = 0.6,
    ladder: Sequence[int] = DEFAULT_SIZE_LADDER,
) -> ArrivalSchedule:
    """Build one deterministic open-loop schedule.

    Three independent seeded streams (times, sizes, tenants) are derived
    from *seed* so changing e.g. the tenant mix never perturbs the
    arrival instants.  ``tenant_shares`` maps tenant name → relative
    weight (normalised here).
    """
    if not tenant_shares:
        raise ValueError("tenant_shares must be non-empty")
    total = sum(tenant_shares.values())
    if total <= 0:
        raise ValueError("tenant_shares weights must sum to a positive value")
    times = poisson_times(rate, requests, seed)
    sizes = lognormal_sizes(
        requests, seed + 1, median=size_median, sigma=size_sigma, ladder=ladder
    )
    names = sorted(tenant_shares)
    probs = np.array([tenant_shares[n] / total for n in names])
    rng = np.random.default_rng(seed + 2)
    picks = rng.choice(len(names), size=requests, p=probs)
    arrivals = tuple(
        Arrival(at=float(times[i]), tenant=names[picks[i]], size=int(sizes[i]))
        for i in range(requests)
    )
    return ArrivalSchedule(arrivals=arrivals, rate=rate, seed=seed)
