"""The multi-tenant async serving front-end.

:class:`TpuServer` turns the batch-mode OPQ → Tensorizer → scheduler →
device stack (paper §6.1, Fig. 4) into a continuously-fed service:

1. clients :meth:`submit` :class:`OperationRequest`\\ s; admission
   control fast-rejects past capacity (:class:`~repro.errors.QueueFull`)
   and fair-queues across tenants;
2. the dispatch loop drains a batch, expires deadlines, **coalesces**
   compatible GEMMs into one batched lowering, and lowers the rest
   individually;
3. lowered instruction streams are partitioned into dispatch groups by
   the locality scheduler and handed to the fault-tolerant
   :class:`~repro.serve.dispatcher.DevicePool`.

Time base: functional results are exact (computed at lowering, as in
the batch path); *service* time is the closed-form pipeline model from
:func:`repro.runtime.executor.group_service_seconds`, charged against
real asyncio time scaled by ``time_scale`` — so a load test exercises
true concurrency (admission, coalescing windows, retries, breakers)
without a discrete-event/asyncio bridge.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional

import numpy as np

from repro.edgetpu.isa import Opcode
from repro.errors import LoadShed, RequestTimeout, ServingError
from repro.host.platform import Platform
from repro.plan import PlanCache
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.runtime.scheduler import SchedulePolicy, build_dispatch_groups
from repro.runtime.tensorizer import Tensorizer, TensorizerOptions
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import coalesce
from repro.serve.dispatcher import DevicePool, DispatchWork
from repro.serve.metrics import ServingMetrics
from repro.serve.request import ServeRequest
from repro.serve.slo import OverloadController, SloPolicy
from repro.shard import MergeBuffer, ShardPlanner, ShardProfile
from repro.telemetry import (
    CounterRegistry,
    SpanTracer,
    device_counters,
    get_tracer,
    memory_counters,
    plan_counters,
    serving_counters,
    tensorizer_counters,
)


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`TpuServer` instance."""

    #: Admission-queue capacity (total pending requests).
    max_queue_depth: int = 256
    #: Per-tenant pending cap, or None for capacity-only backpressure.
    per_tenant_limit: Optional[int] = None
    #: Max requests drained per dispatch-loop turn.
    max_batch: int = 32
    #: Max requests merged into one coalesced GEMM lowering.
    max_coalesce: int = 16
    #: Dispatch-group retries after device failures.
    max_retries: int = 3
    #: Consecutive failures that open a device's circuit breaker.
    breaker_threshold: int = 2
    #: Real seconds an open breaker quarantines its device.
    breaker_cooldown: float = 0.05
    #: Real seconds charged per modeled service second (0 = no sleeping).
    time_scale: float = 1.0
    #: Locality/pipelining policy for dispatch-group formation and cost.
    policy: SchedulePolicy = field(default_factory=SchedulePolicy)
    #: Tensorizer options (tiling, scaling rule, ...).
    options: Optional[TensorizerOptions] = None
    #: SDC-defense mode: "off" (no verification, today's fast path),
    #: "abft" (checksum-verified GEMM tiles), or "vote" (dual-execution
    #: byte compare with checksum adjudication).  See repro.integrity.
    integrity: str = "off"
    #: Base real-seconds hold for an SDC-quarantined device.
    quarantine_seconds: float = 0.05
    #: AOT compiled-plan cache (:mod:`repro.plan`): lower each distinct
    #: lowering signature once, then bind cached plans to later requests
    #: with only per-request input quantization on the host.
    plan_cache: bool = True
    #: Plan-cache LRU bound (distinct live lowering signatures).
    plan_cache_entries: int = 256
    #: Multi-TPU segmentation (:mod:`repro.shard`): "auto" plans
    #: per-device segments for any request lowering to two or more
    #: dispatch groups; "off" keeps pure least-loaded group routing.
    shard: str = "auto"
    #: SLO policy (:mod:`repro.serve.slo`).  Attaching one switches
    #: admission to earliest-deadline-first, stamps tier priorities and
    #: default deadline budgets onto requests, and arms the overload
    #: shedding governor plus (when the policy allows) preemption of
    #: not-yet-dispatched lower-priority work.  None keeps the classic
    #: round-robin, shed-nothing behaviour.
    slo: Optional[SloPolicy] = None
    #: Admission scheduling: "auto" picks "edf" when an SLO policy is
    #: set and "rr" otherwise; explicit "rr"/"edf" override.
    scheduling: str = "auto"
    #: Overload shedding armed (MP workers set False: admission already
    #: happened in the parent, so a worker must never shed).
    shed_enabled: bool = True
    #: Energy-aware shard placement: within a request's deadline slack,
    #: candidates compete on §8.1 active joules instead of makespan.
    energy_aware: bool = False
    #: Fraction of a request's remaining deadline slack the energy-aware
    #: planner may spend as its latency budget.
    energy_headroom: float = 0.5


class TpuServer:
    """Async serving layer over one simulated Edge TPU platform."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[SpanTracer] = None,
        shard_profile: Optional[ShardProfile] = None,
        metrics: Optional[ServingMetrics] = None,
    ) -> None:
        self.platform = platform or Platform()
        self.config = config or ServeConfig()
        self._clock = clock
        self.tracer = tracer if tracer is not None else get_tracer()
        if self.config.shard not in ("auto", "off"):
            raise ValueError(
                f"shard must be 'auto' or 'off', got {self.config.shard!r}"
            )
        if self.config.scheduling not in ("auto", "rr", "edf"):
            raise ValueError(
                f"scheduling must be 'auto', 'rr' or 'edf', "
                f"got {self.config.scheduling!r}"
            )
        # The integrity mode may arrive on ServeConfig (the serving-layer
        # knob) or on TensorizerOptions; the lowering side records the
        # checksum plans and the pool side verifies them, so both must
        # agree on one effective mode.
        options = self.config.options or TensorizerOptions()
        self.integrity = (
            self.config.integrity if self.config.integrity != "off" else options.integrity
        )
        if options.integrity != self.integrity:
            options = dataclasses.replace(options, integrity=self.integrity)
        self.plan_cache = (
            PlanCache(self.config.plan_cache_entries)
            if self.config.plan_cache
            else None
        )
        self.tensorizer = Tensorizer(
            self.platform.config.edgetpu,
            options,
            self.platform.cpu,
            tracer=self.tracer,
            plan_cache=self.plan_cache,
        )
        #: Injectable so a multi-process worker can use seeds derived
        #: from its worker id (see :class:`ServingMetrics`).
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.slo = self.config.slo
        scheduling = self.config.scheduling
        if scheduling == "auto":
            scheduling = "edf" if self.slo is not None else "rr"
        self.admission = AdmissionController(
            self.config.max_queue_depth,
            self.config.per_tenant_limit,
            scheduling=scheduling,
        )
        #: Hysteresis shed governor, armed only with an SLO policy (and
        #: not in MP workers, where the parent already admitted).
        self.overload: Optional[OverloadController] = (
            OverloadController(self.slo, self.config.max_queue_depth)
            if self.slo is not None and self.config.shed_enabled
            else None
        )
        #: Timeout count already fed to the overload governor.
        self._timeouts_seen = 0
        #: Per-device execution profile (pre-seeded in tests / shared
        #: across servers when passed in); the pool feeds it and the
        #: planner reads it, so split points follow measured rates.
        self.shard_profile = (
            shard_profile
            if shard_profile is not None
            else ShardProfile(self.platform.num_tpus)
        )
        self.shard_planner = (
            ShardPlanner(
                self.platform,
                profile=self.shard_profile,
                energy_aware=self.config.energy_aware,
            )
            if self.config.shard == "auto" and self.platform.num_tpus > 1
            else None
        )
        self.pool = DevicePool(
            self.platform,
            self.metrics,
            policy=self.config.policy,
            max_retries=self.config.max_retries,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown=self.config.breaker_cooldown,
            time_scale=self.config.time_scale,
            clock=clock,
            tracer=self.tracer,
            integrity=self.integrity,
            quarantine_seconds=self.config.quarantine_seconds,
            shard_profile=self.shard_profile,
        )
        self._serve_seq = 0
        self._wakeup = asyncio.Event()
        self._loop_task: Optional["asyncio.Task"] = None
        self.started_at: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Start the device pool and the dispatch loop (idempotent)."""
        if self._loop_task is not None:
            return
        self.started_at = self._clock()
        self.pool.start()
        self._loop_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop(), name="serve-dispatch"
        )

    async def stop(self) -> None:
        """Stop the dispatch loop and device pool."""
        if self._loop_task is not None:
            self._loop_task.cancel()
            await asyncio.gather(self._loop_task, return_exceptions=True)
            self._loop_task = None
        await self.pool.stop()

    async def __aenter__(self) -> "TpuServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    async def drain(self) -> None:
        """Wait for the admission queue and device pool to go idle."""
        while self.admission.depth > 0:
            self._wakeup.set()
            await asyncio.sleep(0)
        await self.pool.drain()
        # A dispatch-loop turn may still be lowering between queues.
        while self.admission.depth > 0 or self.pool.in_flight > 0:
            await asyncio.sleep(0)
            await self.pool.drain()

    # -- client API -----------------------------------------------------

    def submit_nowait(
        self,
        request: OperationRequest,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> "asyncio.Future":
        """Admit one request; raise :class:`QueueFull` synchronously.

        With an SLO policy, the tenant's tier stamps a priority and (for
        clients that pass no deadline) the tier's deadline budget; an
        engaged overload governor sheds sheddable tiers with a typed
        :class:`~repro.errors.LoadShed` before anything is enqueued.

        Returns the asyncio future the caller awaits for the functional
        result (a numpy array), or which raises
        :class:`~repro.errors.DeviceFailure` /
        :class:`~repro.errors.RequestTimeout`.
        """
        if self._loop_task is None:
            raise ServingError("server is not started; use 'async with TpuServer(...)'")
        now = self._clock()
        self._serve_seq += 1
        serve_id = self._serve_seq
        # Stamp server-side identity: unique task ids keep lowered
        # instruction streams distinct, and a stable input name gives the
        # locality scheduler / residency model something to key on.
        request = dataclasses.replace(
            request,
            task_id=serve_id,
            input_name=request.input_name or f"serve{serve_id}",
        )
        tier_name, priority, sheddable = "", 0, True
        deadline = None if deadline_seconds is None else now + deadline_seconds
        if self.slo is not None:
            tier = self.slo.tier_of(request.tenant)
            tier_name, priority, sheddable = tier.name, tier.priority, tier.sheddable
            if deadline is None and tier.deadline_budget is not None:
                deadline = now + tier.deadline_budget
        sreq = ServeRequest(
            serve_id=serve_id,
            tenant=request.tenant,
            request=request,
            future=asyncio.get_running_loop().create_future(),
            submitted=now,
            deadline=deadline,
            tier=tier_name,
            priority=priority,
            sheddable=sheddable,
        )
        self.metrics.submitted += 1
        if tier_name:
            self.metrics.submitted_by_tier[tier_name] += 1
        if self.overload is not None and self.overload.should_shed(
            priority, sheddable
        ):
            self.metrics.record_shed(tier_name)
            self.tracer.instant(
                "shed", cat="serve", track="server", serve_id=serve_id, tier=tier_name
            )
            raise LoadShed(
                f"tier {tier_name!r} shed under overload "
                f"(level {self.overload.level}); retry later",
                tier=tier_name,
            )
        try:
            self.admission.offer(sreq)
        except Exception:
            self.metrics.rejected += 1
            self.tracer.instant(
                "reject", cat="serve", track="server", serve_id=serve_id
            )
            raise
        self.tracer.instant(
            "submit", cat="serve", track="server", serve_id=serve_id, tenant=request.tenant
        )
        self._wakeup.set()
        return sreq.future

    async def submit(
        self,
        request: OperationRequest,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> np.ndarray:
        """Admit one request and await its result."""
        return await self.submit_nowait(request, deadline_seconds=deadline_seconds)

    async def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tenant: str = "",
        quant: QuantMode = QuantMode.SCALE,
        chunks: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> np.ndarray:
        """Convenience wrapper: submit one conv2D-style GEMM (§7.1.2)."""
        attrs: Mapping[str, Any] = (
            {"gemm": True} if chunks is None else {"gemm": True, "gemm_chunks": chunks}
        )
        request = OperationRequest(
            task_id=0,
            opcode=Opcode.CONV2D,
            inputs=(np.asarray(a), np.asarray(b)),
            quant=quant,
            attrs=attrs,
            tenant=tenant,
        )
        return await self.submit(request, deadline_seconds=deadline_seconds)

    # -- dispatch loop --------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            if self.admission.depth == 0:
                self._wakeup.clear()
                await self._wakeup.wait()
            # One cooperative tick lets concurrent submitters land in the
            # same drain — the serving-window analogue of batch lowering.
            await asyncio.sleep(0)
            now = self._clock()
            for sreq in self.admission.expire(now):
                if sreq.reject(RequestTimeout(
                    f"request {sreq.serve_id} expired in the admission queue"
                )):
                    self.metrics.record_timeout(sreq)
            depth = self.admission.depth
            self.metrics.sample_queue_depth(depth)
            batch = self.admission.drain(self.config.max_batch)
            if self.overload is not None:
                # Misses per turn = total timeout delta, so deadline
                # expiries at the device queues (past admission) drive
                # the governor's EWMA too — the slow-death signal.
                misses = self.metrics.timeouts - self._timeouts_seen
                self._timeouts_seen = self.metrics.timeouts
                self.overload.observe(depth, misses, len(batch))
            if not batch:
                continue
            if self.slo is not None and self.slo.preempt:
                self._maybe_preempt(batch)
            sp = self.tracer.begin(
                "dispatch_batch", cat="serve", track="server", drained=len(batch)
            )
            for group in coalesce(batch, self.config.max_coalesce):
                self._lower_and_launch(group)
            self.tracer.end(sp)

    def _maybe_preempt(self, batch: List[ServeRequest]) -> None:
        """Yank queued lower-tier groups ahead of an urgent batch.

        Only requests whose every dispatch group is still queued (nothing
        started) are preempted; victims are un-coalesced, their lowering
        state reset, and re-admitted through :meth:`AdmissionController.
        requeue` — an admitted request is never rejected on its way back.
        """
        if self.pool.in_flight == 0:
            return
        urgent = min(s.priority for s in batch if not s.failed)
        for sreq in self.pool.preempt(urgent):
            sreq.op = None
            sreq.outstanding = 0
            sreq.merge = None
            sreq.preemptions += 1
            self.metrics.preemptions += 1
            self.tracer.instant(
                "preempt", cat="serve", track="server", serve_id=sreq.serve_id
            )
            self.admission.requeue(sreq)

    def _lower_and_launch(self, group: List[ServeRequest]) -> None:
        live = [s for s in group if not s.failed]
        if not live:
            return
        try:
            if len(live) > 1:
                ops = self.tensorizer.lower_gemm_coalesced(
                    [s.request for s in live]
                )
                self.metrics.coalesce_groups += 1
                self.metrics.coalesced_requests += len(live)
            else:
                ops = [self.tensorizer.lower(live[0].request)]
        except Exception as exc:  # lowering bugs must not kill the loop
            for sreq in live:
                if sreq.reject(ServingError(f"lowering failed: {exc}")):
                    self.metrics.failed += 1
            return
        for sreq, op in zip(live, ops):
            self._launch(sreq, op)

    def _launch(self, sreq: ServeRequest, op: Any) -> None:
        sreq.op = op
        groups = build_dispatch_groups(op.instrs, self.config.policy, tracer=self.tracer)
        if not groups:
            # Nothing to execute on-device (degenerate op): deliver now,
            # through the same once-only accounting path the dispatcher
            # uses (these two used to duplicate the latency arithmetic).
            self.metrics.record_delivery(sreq, self._clock())
            return
        plan = None
        if self.shard_planner is not None and len(groups) >= 2:
            sp = self.tracer.begin(
                "shard_plan",
                cat="shard",
                track="server",
                serve_id=sreq.serve_id,
                groups=len(groups),
            )
            result = op.result
            max_seconds = None
            if self.config.energy_aware and sreq.deadline is not None:
                slack = (sreq.deadline - self._clock()) * self.config.energy_headroom
                if slack > 0:
                    max_seconds = slack
            plan = self.shard_planner.plan(
                groups,
                result_rows=(
                    result.shape[0]
                    if getattr(result, "ndim", 0) == 2
                    else None
                ),
                devices=self.pool.available_devices(),
                max_seconds=max_seconds,
            )
            if plan is not None and plan.energy_preferred:
                self.metrics.energy_plans += 1
            self.tracer.end(sp.set(
                segments=len(plan.segments) if plan is not None else 0,
                profiled=plan.profiled if plan is not None else False,
                placement=plan.describe() if plan is not None else None,
            ))
        sreq.outstanding = len(groups)
        if plan is None:
            for dgroup in groups:
                self.pool.submit(DispatchWork(group=dgroup, sreq=sreq))
            return
        self.metrics.shard_plans += 1
        self.metrics.shard_segments += len(plan.segments)
        if plan.mergeable and np.issubdtype(op.result.dtype, np.floating):
            sreq.merge = MergeBuffer(op.result)
        for seg_index, seg in enumerate(plan.segments):
            for g in range(seg.start, seg.stop):
                self.pool.submit(DispatchWork(
                    group=groups[g],
                    sreq=sreq,
                    device_hint=seg.device,
                    segment=seg_index,
                    rows=(
                        plan.group_rows[g]
                        if sreq.merge is not None
                        else None
                    ),
                ))

    # -- reporting ------------------------------------------------------

    def counter_registry(self) -> CounterRegistry:
        """Unified counter snapshot: lowering + serving + device memory."""
        registry = CounterRegistry()
        registry.register("tensorizer", tensorizer_counters(self.tensorizer.stats))
        registry.register("serving", serving_counters(self.metrics))
        if self.plan_cache is not None:
            registry.register("plan", plan_counters(self.plan_cache))
        for device in self.platform.devices:
            registry.register(f"memory.{device.name}", memory_counters(device.memory))
            registry.register(f"device.{device.name}", device_counters(device))
        return registry

    def snapshot(self) -> dict:
        """Metrics snapshot including elapsed serving time."""
        elapsed = (
            self._clock() - self.started_at if self.started_at is not None else None
        )
        snap = self.metrics.snapshot(elapsed)
        snap["platform"] = {
            "tpus": self.platform.num_tpus,
            "healthy": sum(1 for d in self.platform.devices if d.healthy),
        }
        snap["breakers"] = {
            self.platform.devices[i].name: {
                "open": b.is_open,
                "opened": b.opened,
                # None while closed; the monotonic half-open instant
                # only exists while the breaker is actually open.
                "reopens_at": b.reopens_at,
            }
            for i, b in enumerate(self.pool.breakers)
        }
        if self.pool.quarantine is not None:
            snap["quarantine"] = self.pool.quarantine.snapshot(
                [d.name for d in self.platform.devices]
            )
        if self.plan_cache is not None:
            snap["plan_cache"] = self.plan_cache.counters()
        snap["sharding"]["enabled"] = self.shard_planner is not None
        snap["sharding"]["profile"] = self.shard_profile.snapshot()
        if self.overload is not None:
            snap["overload"] = self.overload.snapshot()
        return snap
