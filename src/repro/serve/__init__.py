"""repro.serve — multi-tenant async serving over the GPTPU stack.

The paper's runtime (§6.1) is batch-oriented: one caller fills the OPQ,
then syncs.  This package turns the same OPQ → Tensorizer → scheduler →
device pipeline into a continuously-fed service with admission control
and backpressure, multi-client GEMM coalescing, and fault-tolerant
dispatch with retries and circuit breakers.  See docs/serving.md.
"""

from repro.serve.admission import AdmissionController
from repro.serve.coalescer import coalesce, coalesce_key
from repro.serve.dispatcher import CircuitBreaker, DevicePool, DispatchWork
from repro.serve.loadgen import LoadgenResult, LoadgenSpec, run_loadgen
from repro.serve.metrics import ServingMetrics
from repro.serve.request import ServeRequest
from repro.serve.server import ServeConfig, TpuServer

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DevicePool",
    "DispatchWork",
    "LoadgenResult",
    "LoadgenSpec",
    "ServeConfig",
    "ServeRequest",
    "ServingMetrics",
    "TpuServer",
    "coalesce",
    "coalesce_key",
    "run_loadgen",
]
