"""repro.serve — multi-tenant async serving over the GPTPU stack.

The paper's runtime (§6.1) is batch-oriented: one caller fills the OPQ,
then syncs.  This package turns the same OPQ → Tensorizer → scheduler →
device pipeline into a continuously-fed service with admission control
and backpressure, multi-client GEMM coalescing, and fault-tolerant
dispatch with retries and circuit breakers.  See docs/serving.md.
"""

from repro.serve.admission import AdmissionController
from repro.serve.arrivals import (
    Arrival,
    ArrivalSchedule,
    build_schedule,
    lognormal_sizes,
    poisson_times,
)
from repro.serve.coalescer import coalesce, coalesce_key
from repro.serve.dispatcher import CircuitBreaker, DevicePool, DispatchWork
from repro.serve.loadgen import (
    LoadgenResult,
    LoadgenSpec,
    SustainedResult,
    SustainedSpec,
    run_loadgen,
    run_sustained,
)
from repro.serve.metrics import ServingMetrics
from repro.serve.request import ServeRequest
from repro.serve.server import ServeConfig, TpuServer
from repro.serve.slo import OverloadController, SloPolicy, SloTier, gold_silver_bronze

__all__ = [
    "AdmissionController",
    "Arrival",
    "ArrivalSchedule",
    "CircuitBreaker",
    "DevicePool",
    "DispatchWork",
    "LoadgenResult",
    "LoadgenSpec",
    "OverloadController",
    "ServeConfig",
    "ServeRequest",
    "ServingMetrics",
    "SloPolicy",
    "SloTier",
    "SustainedResult",
    "SustainedSpec",
    "TpuServer",
    "build_schedule",
    "coalesce",
    "coalesce_key",
    "gold_silver_bronze",
    "lognormal_sizes",
    "poisson_times",
    "run_loadgen",
    "run_sustained",
]
