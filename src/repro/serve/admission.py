"""Admission control and per-tenant fair queuing.

The paper's front-end OPQ (§6.1, Fig. 4) is unbounded — fine for one
batch-mode caller, fatal for a service.  The admission controller makes
the OPQ a *bounded* queue with two backpressure rules:

* **capacity fast-reject** — offers beyond ``capacity`` total pending
  requests (or beyond a tenant's own share) raise
  :class:`~repro.errors.QueueFull` synchronously, before anything is
  enqueued, so overloaded clients learn immediately;
* **round-robin fair queuing** — each tenant has its own FIFO and the
  dispatcher drains one request per tenant per turn, so a tenant that
  floods the queue cannot starve the others (it only queues behind
  itself).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from repro.errors import QueueFull
from repro.serve.request import ServeRequest


class AdmissionController:
    """Bounded multi-tenant front-end queue with round-robin draining."""

    def __init__(self, capacity: int, per_tenant_limit: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if per_tenant_limit is not None and per_tenant_limit < 1:
            raise ValueError(f"per_tenant_limit must be >= 1, got {per_tenant_limit}")
        self.capacity = capacity
        self.per_tenant_limit = per_tenant_limit
        #: Tenant FIFOs in rotation order; a tenant appears iff non-empty.
        self._queues: "OrderedDict[str, Deque[ServeRequest]]" = OrderedDict()
        self._depth = 0

    @property
    def depth(self) -> int:
        """Total pending requests across all tenants."""
        return self._depth

    @property
    def tenants(self) -> List[str]:
        """Tenants with pending requests, in current rotation order."""
        return list(self._queues)

    def tenant_depth(self, tenant: str) -> int:
        """Pending requests for one tenant."""
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def offer(self, sreq: ServeRequest) -> None:
        """Admit one request or raise :class:`QueueFull` (fast-reject)."""
        if self._depth >= self.capacity:
            raise QueueFull(
                f"admission queue at capacity ({self.capacity}); retry later"
            )
        queue = self._queues.get(sreq.tenant)
        if (
            self.per_tenant_limit is not None
            and queue is not None
            and len(queue) >= self.per_tenant_limit
        ):
            raise QueueFull(
                f"tenant {sreq.tenant!r} at its share ({self.per_tenant_limit}); retry later"
            )
        if queue is None:
            queue = deque()
            self._queues[sreq.tenant] = queue
        queue.append(sreq)
        self._depth += 1

    def drain(self, limit: int) -> List[ServeRequest]:
        """Pop up to *limit* requests, one per tenant per rotation turn.

        FCFS within a tenant; round-robin across tenants — the fairness
        rule that bounds any tenant's queueing delay by the number of
        *active* tenants, not by the flood depth of the loudest one.
        """
        out: List[ServeRequest] = []
        while self._queues and len(out) < limit:
            tenant, queue = next(iter(self._queues.items()))
            del self._queues[tenant]
            out.append(queue.popleft())
            self._depth -= 1
            if queue:
                # Back of the rotation: other tenants go first next turn.
                self._queues[tenant] = queue
        return out

    def expire(self, now: float) -> List[ServeRequest]:
        """Remove and return every pending request whose deadline passed."""
        expired: List[ServeRequest] = []
        for tenant in list(self._queues):
            queue = self._queues[tenant]
            keep: Deque[ServeRequest] = deque()
            for sreq in queue:
                (expired if sreq.expired(now) else keep).append(sreq)
            if keep:
                self._queues[tenant] = keep
            else:
                del self._queues[tenant]
        self._depth -= len(expired)
        return expired
