"""Admission control: fair queuing or deadline-first scheduling.

The paper's front-end OPQ (§6.1, Fig. 4) is unbounded — fine for one
batch-mode caller, fatal for a service.  The admission controller makes
the OPQ a *bounded* queue with two backpressure rules:

* **capacity fast-reject** — offers beyond ``capacity`` total pending
  requests (or beyond a tenant's own share) raise
  :class:`~repro.errors.QueueFull` synchronously, before anything is
  enqueued, so overloaded clients learn immediately;
* **scheduling** — ``"rr"`` (default) keeps per-tenant FIFOs drained
  round-robin, one request per tenant per turn, so a flooding tenant
  only queues behind itself; ``"edf"`` drains earliest-deadline-first
  with tier priority as the tiebreak (the SLO-serving mode: a gold
  request with a tight budget overtakes a bronze backlog instead of
  waiting out the rotation).

EDF ordering is a min-heap keyed ``(deadline, priority, seq)``; a
request with no deadline sorts after every deadlined one.  The sequence
number makes draining stable and deterministic under equal keys.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import QueueFull
from repro.serve.request import ServeRequest


class AdmissionController:
    """Bounded multi-tenant front-end queue ("rr" or "edf" draining)."""

    def __init__(
        self,
        capacity: int,
        per_tenant_limit: Optional[int] = None,
        scheduling: str = "rr",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if per_tenant_limit is not None and per_tenant_limit < 1:
            raise ValueError(f"per_tenant_limit must be >= 1, got {per_tenant_limit}")
        if scheduling not in ("rr", "edf"):
            raise ValueError(f"scheduling must be 'rr' or 'edf', got {scheduling!r}")
        self.capacity = capacity
        self.per_tenant_limit = per_tenant_limit
        self.scheduling = scheduling
        #: Tenant FIFOs in rotation order; a tenant appears iff non-empty.
        self._queues: "OrderedDict[str, Deque[ServeRequest]]" = OrderedDict()
        #: EDF heap entries: (deadline-or-inf, priority, seq, request).
        self._heap: List[Tuple[float, int, int, ServeRequest]] = []
        #: Per-tenant pending counts (EDF mode; "rr" uses queue lengths).
        self._counts: "OrderedDict[str, int]" = OrderedDict()
        self._seq = 0
        self._depth = 0

    @property
    def depth(self) -> int:
        """Total pending requests across all tenants."""
        return self._depth

    @property
    def tenants(self) -> List[str]:
        """Tenants with pending requests, in current rotation order."""
        if self.scheduling == "edf":
            return [t for t, count in self._counts.items() if count > 0]
        return list(self._queues)

    def tenant_depth(self, tenant: str) -> int:
        """Pending requests for one tenant."""
        if self.scheduling == "edf":
            return self._counts.get(tenant, 0)
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    # -- enqueue --------------------------------------------------------

    def offer(self, sreq: ServeRequest) -> None:
        """Admit one request or raise :class:`QueueFull` (fast-reject)."""
        if self._depth >= self.capacity:
            raise QueueFull(
                f"admission queue at capacity ({self.capacity}); retry later"
            )
        if (
            self.per_tenant_limit is not None
            and self.tenant_depth(sreq.tenant) >= self.per_tenant_limit
        ):
            raise QueueFull(
                f"tenant {sreq.tenant!r} at its share ({self.per_tenant_limit}); retry later"
            )
        self._enqueue(sreq)

    def requeue(self, sreq: ServeRequest) -> None:
        """Reinsert a preempted (already-admitted) request.

        Bypasses the capacity and per-tenant checks: the request was
        admitted once and must not be rejectable on its way back — the
        queue may transiently exceed ``capacity`` by the preempted
        count, which the next shed decision sees as pressure.
        """
        self._enqueue(sreq, front=True)

    def _enqueue(self, sreq: ServeRequest, front: bool = False) -> None:
        if self.scheduling == "edf":
            key = math.inf if sreq.deadline is None else sreq.deadline
            self._seq += 1
            heapq.heappush(self._heap, (key, sreq.priority, self._seq, sreq))
            self._counts[sreq.tenant] = self._counts.get(sreq.tenant, 0) + 1
        else:
            queue = self._queues.get(sreq.tenant)
            if queue is None:
                queue = deque()
                self._queues[sreq.tenant] = queue
            (queue.appendleft if front else queue.append)(sreq)
        self._depth += 1

    # -- dequeue --------------------------------------------------------

    def drain(self, limit: int) -> List[ServeRequest]:
        """Pop up to *limit* requests in scheduling order.

        "rr": FCFS within a tenant, round-robin across tenants — the
        fairness rule that bounds any tenant's queueing delay by the
        number of *active* tenants, not the flood depth of the loudest.
        "edf": globally earliest deadline first, tier priority breaking
        ties, so the scarce dispatch turns go to the requests with the
        least slack.
        """
        out: List[ServeRequest] = []
        if self.scheduling == "edf":
            while self._heap and len(out) < limit:
                _key, _prio, _seq, sreq = heapq.heappop(self._heap)
                self._counts[sreq.tenant] -= 1
                out.append(sreq)
                self._depth -= 1
            return out
        while self._queues and len(out) < limit:
            tenant, queue = next(iter(self._queues.items()))
            del self._queues[tenant]
            out.append(queue.popleft())
            self._depth -= 1
            if queue:
                # Back of the rotation: other tenants go first next turn.
                self._queues[tenant] = queue
        return out

    def expire(self, now: float) -> List[ServeRequest]:
        """Remove and return every pending request whose deadline passed."""
        expired: List[ServeRequest] = []
        if self.scheduling == "edf":
            keep: List[Tuple[float, int, int, ServeRequest]] = []
            for entry in self._heap:
                sreq = entry[3]
                if sreq.expired(now):
                    expired.append(sreq)
                    self._counts[sreq.tenant] -= 1
                else:
                    keep.append(entry)
            if expired:
                heapq.heapify(keep)
                self._heap = keep
        else:
            for tenant in list(self._queues):
                queue = self._queues[tenant]
                keep_q: Deque[ServeRequest] = deque()
                for sreq in queue:
                    (expired if sreq.expired(now) else keep_q).append(sreq)
                if keep_q:
                    self._queues[tenant] = keep_q
                else:
                    del self._queues[tenant]
        self._depth -= len(expired)
        return expired
