"""Serving observability: latencies, queue depth, devices, retries.

One :class:`ServingMetrics` instance per server.  Counters are plain
ints/floats updated from the single event loop thread; ``snapshot()``
returns a JSON-friendly dict (the payload of ``BENCH_serving.json`` and
the ``repro serve`` report table).
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import defaultdict
from typing import Dict, Optional

from repro.metrics import LatencySummary, ReservoirSample

#: Bound on retained latency / queue-depth samples.  Below this the
#: sample is exact; past it, reservoir sampling keeps percentiles honest
#: while a sustained run's memory stays O(1).
SAMPLE_RESERVOIR_CAPACITY = 8192


def reservoir_seed(base_seed: int, worker_id: int, stream: str) -> int:
    """Distinct, stable reservoir seed per (base_seed, worker, stream).

    Multi-process serving gives every worker its own metrics instance;
    if each used the same hardcoded seed, the reservoirs would make
    identical keep/evict decisions on identical streams and the merged
    percentiles would be skewed toward correlated samples.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{worker_id}:{stream}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ServingMetrics:
    """Lifetime counters and distributions for one serving session.

    ``base_seed`` / ``worker_id`` decorrelate the sampling reservoirs
    across the processes of a multi-process server; worker instances are
    folded back into the parent's with :meth:`merge_state`.
    """

    def __init__(self, base_seed: int = 0, worker_id: int = 0) -> None:
        self.base_seed = base_seed
        self.worker_id = worker_id
        self.submitted = 0
        self.rejected = 0  # QueueFull fast-rejects (capacity)
        self.shed = 0  # LoadShed rejects (overload policy)
        self.timeouts = 0  # RequestTimeout rejections
        self.completed = 0  # futures resolved with a result
        self.failed = 0  # futures rejected with DeviceFailure
        #: Preemptions: not-yet-dispatched requests pulled back into the
        #: admission queue to make room for a higher-priority batch.
        self.preemptions = 0
        #: Shard placements where the energy-aware planner chose a
        #: cheaper-energy candidate over the minimum-makespan one.
        self.energy_plans = 0
        #: Per-SLO-tier accounting (keys are tier names; empty when the
        #: server runs without an SLO policy).
        self.submitted_by_tier: Dict[str, int] = defaultdict(int)
        self.completed_by_tier: Dict[str, int] = defaultdict(int)
        self.shed_by_tier: Dict[str, int] = defaultdict(int)
        #: Deadline misses (admission expiry or in-flight timeout).
        self.miss_by_tier: Dict[str, int] = defaultdict(int)
        #: Modeled device busy seconds attributed to each tier.
        self.busy_by_tier: Dict[str, float] = defaultdict(float)
        #: Per-tier end-to-end latency reservoirs (lazily created).
        self.latency_by_tier: Dict[str, ReservoirSample] = {}
        #: Per-request end-to-end latencies (seconds, completed only).
        self.latencies = ReservoirSample(
            SAMPLE_RESERVOIR_CAPACITY,
            seed=reservoir_seed(base_seed, worker_id, "latency"),
        )
        #: Admission-queue depth sampled at each dispatch-loop drain.
        self.queue_depth_samples = ReservoirSample(
            SAMPLE_RESERVOIR_CAPACITY,
            seed=reservoir_seed(base_seed, worker_id, "queue-depth"),
        )
        #: Dispatch-group retries after a device failure.
        self.retries = 0
        #: Device failures observed (fault hook firings seen by workers).
        self.device_failures = 0
        #: Requests that shared a coalesced lowering (group size >= 2).
        self.coalesced_requests = 0
        #: Coalesced lowerings performed.
        self.coalesce_groups = 0
        #: Dispatch groups executed to completion, per device name.
        self.groups_by_device: Dict[str, int] = defaultdict(int)
        #: Modeled matrix-unit busy seconds, per device name.
        self.busy_by_device: Dict[str, float] = defaultdict(float)
        #: Failures, per device name.
        self.failures_by_device: Dict[str, int] = defaultdict(int)
        #: Bytes moved host<->device (after residency hits).
        self.bytes_in = 0
        self.bytes_out = 0
        #: Integrity layer (repro.integrity): tiles transmitted through
        #: the verifier, detected-corrupt tiles, group-level incidents,
        #: groups delivered clean after at least one SDC retry
        #: (corrections), quarantine entries, and vote disagreements
        #: adjudicated against the witness.
        self.tiles_verified = 0
        self.sdc_detected = 0
        self.sdc_incidents = 0
        self.sdc_corrected = 0
        self.quarantines = 0
        self.vote_adjudications = 0
        #: SDC incidents per device name.
        self.sdc_by_device: Dict[str, int] = defaultdict(int)
        #: Sharding layer (repro.shard): requests placed by the
        #: segmentation planner, per-device segments those plans
        #: produced, segments re-routed off an unavailable hinted
        #: device (migrations), and sharded results reassembled through
        #: the row-merge buffer.
        self.shard_plans = 0
        self.shard_segments = 0
        self.shard_migrations = 0
        self.shard_merged = 0

    # -- recording ------------------------------------------------------

    def _tier_reservoir(self, tier: str) -> ReservoirSample:
        reservoir = self.latency_by_tier.get(tier)
        if reservoir is None:
            reservoir = ReservoirSample(
                SAMPLE_RESERVOIR_CAPACITY,
                seed=reservoir_seed(
                    self.base_seed, self.worker_id, f"latency.{tier}"
                ),
            )
            self.latency_by_tier[tier] = reservoir
        return reservoir

    def record_completion(self, latency_seconds: float, tier: str = "") -> None:
        """One request delivered; account its end-to-end latency."""
        self.completed += 1
        self.latencies.add(latency_seconds)
        if tier:
            self.completed_by_tier[tier] += 1
            self._tier_reservoir(tier).add(latency_seconds)

    def record_delivery(self, sreq, now: float) -> bool:
        """THE single completion path: resolve *sreq* and account it.

        Every layer that delivers a result (the dispatcher's last-group
        completion, the server's degenerate-op fast path) must go
        through here, so resolve and latency accounting cannot drift
        apart.  Returns True when this call won the once-only resolve —
        i.e. exactly one caller per request sees True.
        """
        if not sreq.resolve():
            return False
        self.record_completion(now - sreq.submitted, tier=sreq.tier)
        return True

    def record_timeout(self, sreq) -> None:
        """One deadline miss (queue expiry or pre-dispatch timeout)."""
        self.timeouts += 1
        if sreq.tier:
            self.miss_by_tier[sreq.tier] += 1

    def record_shed(self, tier: str) -> None:
        """One request shed by overload policy at admission."""
        self.shed += 1
        if tier:
            self.shed_by_tier[tier] += 1

    def record_group(
        self,
        device: str,
        exec_seconds: float,
        bytes_in: int,
        bytes_out: int,
        tier: str = "",
    ) -> None:
        """One dispatch group retired on *device*."""
        self.groups_by_device[device] += 1
        self.busy_by_device[device] += exec_seconds
        self.bytes_in += bytes_in
        self.bytes_out += bytes_out
        if tier:
            self.busy_by_tier[tier] += exec_seconds

    def record_device_failure(self, device: str) -> None:
        """One fault-hook firing on *device*."""
        self.device_failures += 1
        self.failures_by_device[device] += 1

    def record_sdc(self, device: str, tiles: int) -> None:
        """One silent-data-corruption incident (*tiles* bad) on *device*."""
        self.sdc_incidents += 1
        self.sdc_detected += tiles
        self.sdc_by_device[device] += 1

    def sample_queue_depth(self, depth: int) -> None:
        """Record the admission-queue depth at a dispatch-loop drain."""
        self.queue_depth_samples.add(depth)

    # -- cross-process merge --------------------------------------------

    _SCALARS = (
        "submitted", "rejected", "shed", "timeouts", "completed", "failed",
        "preemptions", "energy_plans",
        "retries", "device_failures", "coalesced_requests",
        "coalesce_groups", "bytes_in", "bytes_out", "tiles_verified",
        "sdc_detected", "sdc_incidents", "sdc_corrected", "quarantines",
        "vote_adjudications", "shard_plans", "shard_segments",
        "shard_migrations", "shard_merged",
    )
    _DEVICE_MAPS = (
        "groups_by_device", "busy_by_device", "failures_by_device",
        "sdc_by_device",
    )
    _TIER_MAPS = (
        "submitted_by_tier", "completed_by_tier", "shed_by_tier",
        "miss_by_tier", "busy_by_tier",
    )

    def export_state(self) -> dict:
        """Picklable state for shipping across a process boundary."""
        state: dict = {name: getattr(self, name) for name in self._SCALARS}
        for name in self._DEVICE_MAPS + self._TIER_MAPS:
            state[name] = dict(getattr(self, name))
        state["latencies"] = self.latencies.export_state()
        state["queue_depth_samples"] = self.queue_depth_samples.export_state()
        state["latency_by_tier"] = {
            tier: res.export_state() for tier, res in self.latency_by_tier.items()
        }
        return state

    def merge_state(self, state: dict) -> None:
        """Fold a worker's :meth:`export_state` into this instance.

        Scalar counters, per-device counters, and the reservoirs' exact
        count/total/max add precisely; only the *retained* percentile
        samples are subsampled when the union exceeds capacity (see
        :meth:`ReservoirSample.merge_state`).
        """
        for name in self._SCALARS:
            setattr(self, name, getattr(self, name) + state.get(name, 0))
        for name in self._DEVICE_MAPS + self._TIER_MAPS:
            target = getattr(self, name)
            for key, value in state.get(name, {}).items():
                target[key] += value
        self.latencies.merge_state(state["latencies"])
        self.queue_depth_samples.merge_state(state["queue_depth_samples"])
        for tier, res_state in state.get("latency_by_tier", {}).items():
            self._tier_reservoir(tier).merge_state(res_state)

    # -- reporting ------------------------------------------------------

    @property
    def delivered(self) -> int:
        """Requests whose future settled (result or error)."""
        return self.completed + self.failed + self.timeouts

    @property
    def lost(self) -> int:
        """Admitted requests unaccounted for — must be 0 after a drain."""
        return self.submitted - self.rejected - self.shed - self.delivered

    def latency_summary(self) -> Optional[LatencySummary]:
        """p50/p90/p99 summary, or None before the first completion.

        Percentiles come from the retained reservoir (exact below
        capacity); count, mean, and max come from the exact running
        aggregates, so they never degrade past the bound.
        """
        if not self.latencies:
            return None
        summary = LatencySummary.from_samples(self.latencies.values())
        return dataclasses.replace(
            summary,
            count=self.latencies.count,
            mean=self.latencies.mean,
            max=self.latencies.max_value,
        )

    def tier_summary(self, tier: str) -> Optional[LatencySummary]:
        """Latency summary for one tier, or None before a completion."""
        reservoir = self.latency_by_tier.get(tier)
        if not reservoir:
            return None
        summary = LatencySummary.from_samples(reservoir.values())
        return dataclasses.replace(
            summary,
            count=reservoir.count,
            mean=reservoir.mean,
            max=reservoir.max_value,
        )

    def counters(self) -> Dict[str, float]:
        """Flat scalar counters for the telemetry CounterRegistry."""
        out = {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "completed": self.completed,
            "failed": self.failed,
            "preemptions": self.preemptions,
            "energy_plans": self.energy_plans,
            "lost": self.lost,
            "retries": self.retries,
            "device_failures": self.device_failures,
            "coalesce_groups": self.coalesce_groups,
            "coalesced_requests": self.coalesced_requests,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "tiles_verified": self.tiles_verified,
            "sdc_detected": self.sdc_detected,
            "sdc_incidents": self.sdc_incidents,
            "sdc_corrected": self.sdc_corrected,
            "quarantines": self.quarantines,
            "vote_adjudications": self.vote_adjudications,
            "shard_plans": self.shard_plans,
            "shard_segments": self.shard_segments,
            "shard_migrations": self.shard_migrations,
            "shard_merged": self.shard_merged,
        }
        for tier in sorted(self.shed_by_tier):
            out[f"shed.{tier}"] = self.shed_by_tier[tier]
        for tier in sorted(self.miss_by_tier):
            out[f"deadline_miss.{tier}"] = self.miss_by_tier[tier]
        for tier in sorted(self.completed_by_tier):
            out[f"completed.{tier}"] = self.completed_by_tier[tier]
        return out

    def snapshot(self, elapsed_seconds: Optional[float] = None) -> dict:
        """JSON-friendly state dump (stable keys; see docs/serving.md)."""
        latency = self.latency_summary()
        devices = {}
        for name in sorted(
            set(self.groups_by_device) | set(self.busy_by_device) | set(self.failures_by_device)
        ):
            busy = self.busy_by_device.get(name, 0.0)
            entry = {
                "groups": self.groups_by_device.get(name, 0),
                "busy_seconds": busy,
                "failures": self.failures_by_device.get(name, 0),
                "sdc_incidents": self.sdc_by_device.get(name, 0),
            }
            if elapsed_seconds:
                entry["utilization"] = busy / elapsed_seconds
            devices[name] = entry
        tiers = {}
        for tier in sorted(
            set(self.submitted_by_tier)
            | set(self.completed_by_tier)
            | set(self.shed_by_tier)
            | set(self.miss_by_tier)
            | set(self.busy_by_tier)
        ):
            summary = self.tier_summary(tier)
            tiers[tier] = {
                "submitted": self.submitted_by_tier.get(tier, 0),
                "completed": self.completed_by_tier.get(tier, 0),
                "shed": self.shed_by_tier.get(tier, 0),
                "deadline_misses": self.miss_by_tier.get(tier, 0),
                "busy_seconds": self.busy_by_tier.get(tier, 0.0),
                "latency": summary.as_dict() if summary is not None else None,
            }
        depth = self.queue_depth_samples
        return {
            "outcomes": {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "completed": self.completed,
                "failed": self.failed,
                "lost": self.lost,
            },
            "tiers": tiers,
            "latency": latency.as_dict() if latency is not None else None,
            "queue_depth": {
                "samples": depth.count,
                "max": int(depth.max_value) if depth else 0,
                "mean": depth.mean,
            },
            "retries": self.retries,
            "preemptions": self.preemptions,
            "device_failures": self.device_failures,
            "coalescing": {
                "groups": self.coalesce_groups,
                "requests_coalesced": self.coalesced_requests,
            },
            "devices": devices,
            "bytes": {"in": self.bytes_in, "out": self.bytes_out},
            "integrity": {
                "tiles_verified": self.tiles_verified,
                "sdc_detected": self.sdc_detected,
                "sdc_incidents": self.sdc_incidents,
                "sdc_corrected": self.sdc_corrected,
                "quarantines": self.quarantines,
                "vote_adjudications": self.vote_adjudications,
            },
            "sharding": {
                "plans": self.shard_plans,
                "segments": self.shard_segments,
                "migrations": self.shard_migrations,
                "merged": self.shard_merged,
                "energy_plans": self.energy_plans,
            },
            "elapsed_seconds": elapsed_seconds,
        }
