"""Request coalescing: merge compatible multi-client GEMMs.

Serving traffic is dominated by the "many clients, one weight matrix"
pattern — the same model operand *B* multiplied against each client's
own data.  The coalescer groups admitted GEMM requests whose lowering
is provably mergeable and hands each group to
:meth:`repro.runtime.tensorizer.Tensorizer.lower_gemm_coalesced`, which
runs ONE batched lowering and de-multiplexes bit-identical per-client
results.

Compatibility (conservative by construction — anything else stays a
singleton and lowers normally):

* conv2D-GEMM opcode (``gemm=True``) with only known GEMM attributes;
* SCALE quantization (GLOBAL derives scales from each request's whole
  dataset, so merged scales would differ from solo ones);
* identical data-operand shape (identical chunk geometry);
* identical model operand *B*, keyed by a content digest and verified
  by value inside the coalesced lowering.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.edgetpu.isa import Opcode
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.serve.request import ServeRequest

#: GEMM lowering attributes the coalescer understands; a request with
#: any other attribute is left alone rather than guessed about.
GEMM_ATTR_KEYS = frozenset({"gemm", "gemm_chunks"})


def coalesce_key(request: OperationRequest) -> Optional[Tuple]:
    """Grouping key for a coalescible GEMM, or None when not eligible."""
    if request.opcode is not Opcode.CONV2D or not request.attrs.get("gemm", False):
        return None
    if request.quant is not QuantMode.SCALE:
        return None
    if set(request.attrs) - GEMM_ATTR_KEYS:
        return None
    if len(request.inputs) != 2:
        return None
    a, b = request.inputs
    if getattr(a, "ndim", 0) != 2 or getattr(b, "ndim", 0) != 2:
        return None
    if a.shape[1] != b.shape[0]:
        return None
    digest = hashlib.sha256(np.ascontiguousarray(b).tobytes()).hexdigest()
    return (a.shape, b.shape, digest, request.attrs.get("gemm_chunks"))


def coalesce(
    sreqs: Sequence[ServeRequest], max_group: int = 16
) -> List[List[ServeRequest]]:
    """Partition requests into coalescible groups, preserving FCFS order.

    Groups are ordered by their first member's arrival; non-eligible
    requests become singleton groups.  ``max_group`` bounds lowering
    working-set size (the stacked operand is ``group × data`` rows).
    """
    if max_group < 1:
        raise ValueError(f"max_group must be >= 1, got {max_group}")
    groups: List[List[ServeRequest]] = []
    open_by_key: Dict[Tuple, List[ServeRequest]] = {}
    for sreq in sreqs:
        key = coalesce_key(sreq.request)
        if key is None:
            groups.append([sreq])
            continue
        group = open_by_key.get(key)
        if group is None or len(group) >= max_group:
            group = [sreq]
            groups.append(group)
            open_by_key[key] = group
        else:
            group.append(sreq)
    return groups
