"""FBGEMM-like low-precision CPU GEMM (paper §9.2, Table 5).

The paper compares GPTPU's GEMM against Facebook's FBGEMM running 8-bit
AVX matrix products and finds that "FB's GEMM targets error-tolerant ML
applications but does not handle overflow cases": RMSE is 0 for small
value ranges, then explodes (0.47 at max=32, up to 0.97 at max=128),
while GPTPU's per-operation §6.2.2 scaling keeps RMSE < 1 %.

We model the documented failure mode: an AVX-style kernel whose
accumulation path saturates at 16 bits.  Int8 products accumulate into
a 16-bit unsigned register; once the true dot product exceeds 65 535
the result clamps and the relative error grows with the value range —
reproducing the Table 5 cliff.  The time model charges FBGEMM's int8
throughput advantage over float OpenBLAS.
"""

from __future__ import annotations

import numpy as np

from repro.config import CPUConfig
from repro.host.cpu import CPUCoreModel

#: The narrow accumulator's saturation ceiling (unsigned 16-bit).
ACC_SATURATION = 65535
#: FBGEMM's effective int8 GEMM rate on one Ryzen core.  Int8 AVX2 gives
#: a modest edge over float OpenBLAS; calibrated so GPTPU-GEMM's Table 5
#: speedup lands in the published 1.22–1.28x band.
FBGEMM_INT8_FLOPS = 38e9


def fbgemm_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """8-bit GEMM with saturating 16-bit accumulation.

    Inputs must already be small non-negative integers (the Table 5
    experiment uses positive integers up to 128); values outside the
    uint8/int8 range are clipped exactly as the real kernel would.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"fbgemm_gemm shapes incompatible: {a.shape} x {b.shape}")
    qa = np.clip(np.rint(a), 0, 255).astype(np.int64)
    qb = np.clip(np.rint(b), -128, 127).astype(np.int64)
    # Exact wide product first (float64 BLAS on integers is exact here),
    # then the narrow-accumulator saturation the AVX path exhibits.
    wide = qa.astype(np.float64) @ qb.astype(np.float64)
    return np.clip(wide, -ACC_SATURATION - 1, ACC_SATURATION)


def fbgemm_seconds(m: int, n: int, k: int, cpu: CPUConfig | CPUCoreModel | None = None) -> float:
    """Modeled single-core wall time of the FBGEMM int8 product."""
    if m < 0 or n < 0 or k < 0:
        raise ValueError("negative GEMM dimensions")
    return 2.0 * m * n * k / FBGEMM_INT8_FLOPS
