"""Multicore (OpenMP-style) CPU execution of the baselines (Fig. 8a)."""

from __future__ import annotations

from repro.host.cpu import CPUCoreModel, openmp_speedup


def openmp_run(single_core_seconds: float, ncores: int, cpu: CPUCoreModel | None = None) -> float:
    """Wall time of the OpenMP baseline on *ncores* cores.

    Applies the bandwidth-bound scaling curve fitted through the paper's
    published 2.70× at 8 cores.
    """
    cpu = cpu or CPUCoreModel()
    return cpu.parallel_seconds(single_core_seconds, ncores)
