"""Baseline implementations the paper compares against (§8.2, §9.2).

* :mod:`repro.baselines.cpu_blas` — the OpenBLAS float GEMM proxy,
* :mod:`repro.baselines.fbgemm` — the low-precision 8-bit CPU GEMM with
  the overflow behaviour the paper reports (Table 5),
* :mod:`repro.baselines.openmp` — multicore CPU execution (Fig. 8a).

Every baseline computes its *result* exactly with NumPy; only wall time
comes from the calibrated cost models (DESIGN.md §1).
"""

from repro.baselines.cpu_blas import TimedResult, blas_gemm
from repro.baselines.fbgemm import fbgemm_gemm, fbgemm_seconds
from repro.baselines.openmp import openmp_run

__all__ = ["TimedResult", "blas_gemm", "fbgemm_gemm", "fbgemm_seconds", "openmp_run"]
