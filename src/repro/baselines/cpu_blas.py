"""OpenBLAS-proxy CPU baseline (paper §7.1.3, Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.cpu import CPUCoreModel


@dataclass(frozen=True)
class TimedResult:
    """A baseline's exact result and its modeled single-core wall time."""

    value: np.ndarray
    seconds: float


def blas_gemm(a: np.ndarray, b: np.ndarray, cpu: CPUCoreModel | None = None) -> TimedResult:
    """Single-precision GEMM on one Ryzen core via OpenBLAS.

    The value is the exact float64 product; the time is the calibrated
    2·M·N·K / sgemm_flops model.
    """
    cpu = cpu or CPUCoreModel()
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"blas_gemm shapes incompatible: {a.shape} x {b.shape}")
    m, n = a.shape
    k = b.shape[1]
    return TimedResult(value=a @ b, seconds=cpu.gemm_seconds(m, n, k))
