"""Gaussian elimination (paper §7.2.4, Table 3: 4K×4K, Linear Algebra).

Reduces [A | b] to upper-triangular form and back-substitutes.  "For
Gaussian, GPTPU uses mul to perform each row reduction": the pivot-row
normalizations are pairwise ``mul`` instructions against broadcast
reciprocal pivots, and the trailing update — the O(n³) bulk of the row
reductions — runs as conv2D GEMM per block step (blocked elimination,
the BLAS-3 formulation of the same arithmetic), with the subtraction
folded into the host aggregation of the partials (§6.2.1).

The exact identity used per block (D = diag(U11)):

    A22 − L21·U12 = A22 − (L21·D) · (D⁻¹·U12)

where both ``L21·D`` and ``D⁻¹·U12`` are pairwise products with a
broadcast diagonal — the two on-device ``mul`` ops.

Inputs are diagonally dominant so elimination without pivoting is
stable, matching the no-pivot structure of the Rodinia kernel.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.linalg import solve_triangular

from repro.apps.base import Application, CPUResult, GPTPUResult
from repro.apps.lud import make_dd_matrix, packed_lu_cpu
from repro.host.cpu import CPUCoreModel
from repro.ops.elementwise import tpu_mul
from repro.ops.gemm import tpu_gemm
from repro.runtime.api import OpenCtpu


class GaussianApp(Application):
    """Blocked Gaussian elimination + back-substitution."""

    name = "gaussian"
    category = "Linear Algebra"
    paper_input = "1 x 4K x 4K (64 MB)"

    def __init__(self, block: int = 128) -> None:
        self.block = block

    def default_params(self) -> Dict[str, int]:
        return {"n": 1024}

    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        n = params.get("n", 256)
        rng = np.random.default_rng(seed + 1)
        return {"a": make_dd_matrix(n, seed), "b": rng.uniform(0.0, 1.0, n)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        a = inputs["a"].copy()
        b = inputs["b"].copy()
        n = a.shape[0]
        for k in range(n - 1):
            factors = a[k + 1 :, k] / a[k, k]
            a[k + 1 :, k:] -= np.outer(factors, a[k, k:])
            b[k + 1 :] -= factors * b[k]
        x = solve_triangular(a, b)
        # Rodinia's gaussian is a hand-written triple loop over the
        # trailing matrix: (2/3)n³ multiply-adds at the naive rate.
        seconds = (2.0 / 3.0) * n**3 * 2.0 / cpu.config.naive_gemm_flops
        return CPUResult(value=x, seconds=seconds)

    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        a = np.asarray(inputs["a"], dtype=np.float64).copy()
        rhs = np.asarray(inputs["b"], dtype=np.float64).copy()
        n = a.shape[0]
        blk = self.block
        cpu = ctx.platform.cpu
        reports = []
        for k0 in range(0, n, blk):
            k1 = min(k0 + blk, n)
            b = k1 - k0
            # Host: factor the panel and solve the two triangular systems
            # (small, sequential, latency-bound — kept on the CPU as the
            # paper's implementations do for control-heavy pieces).
            lu_panel = packed_lu_cpu(a[k0:k1, k0:k1])
            l11 = np.tril(lu_panel, -1) + np.eye(b)
            u11 = np.triu(lu_panel)
            ctx.host_compute(cpu.scalar_seconds(max(1, 2 * b**3 // 3)), label="panel-lu")
            a[k0:k1, k0:k1] = lu_panel
            u12 = solve_triangular(l11, a[k0:k1, k1:], lower=True, unit_diagonal=True)
            a[k0:k1, k1:] = u12
            rhs[k0:k1] = solve_triangular(l11, rhs[k0:k1], lower=True, unit_diagonal=True)
            if k1 >= n:
                break
            l21 = solve_triangular(u11.T, a[k1:, k0:k1].T, lower=True).T
            ctx.host_compute(
                cpu.scalar_seconds(max(1, b * b * (n - k1) * 2)), label="trsm"
            )
            a[k1:, k0:k1] = l21

            # Device: the paper's mul-based row reductions.
            diag = np.diag(u11)
            u12_norm = tpu_mul(ctx, u12, np.broadcast_to(1.0 / diag[:, None], u12.shape))
            l21_scaled = tpu_mul(ctx, l21, np.broadcast_to(diag[None, :], l21.shape))
            prod = tpu_gemm(ctx, l21_scaled, u12_norm, method="conv2d")
            # The subtraction fuses into the GEMM's CPU aggregation pass
            # (one extra subtract while the partials are being written),
            # so it adds no separate host phase.
            a[k1:, k1:] -= prod
            rhs[k1:] -= l21 @ rhs[k0:k1]
            ctx.host_compute(cpu.stream_seconds(l21.size * 8), label="rhs-update")
            reports.append(ctx.sync())  # block steps serialize
        x = solve_triangular(np.triu(a), rhs)
        ctx.host_compute(cpu.scalar_seconds(n * n), label="back-substitution")
        return self._collect(ctx, x, reports)
