"""Black-Scholes option pricing (paper §7.2.6, Table 3: 256M×9, Finance).

Prices European calls.  The cumulative normal distribution function is
the transcendental bottleneck; "GPTPU uses a ninth-degree polynomial
function [75] ... to compute the cumulative normal distribution
function".  We fit the degree-9 polynomial to Φ on [-4, 4] once at
import and evaluate it on-device with Horner's rule: nine pairwise
``mul`` instructions, with the tiny per-step coefficient adds folded
into the host aggregation (§6.2.1).

The CPU baseline evaluates the exact Φ via ``erf`` at the calibrated
AxBench per-option cost.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.special import ndtr  # exact Φ

from repro.apps.base import Application, CPUResult, GPTPUResult
from repro.host.cpu import CPUCoreModel
from repro.ops.elementwise import tpu_mul
from repro.runtime.api import OpenCtpu

#: Domain on which the polynomial approximates Φ; d-values are clipped
#: here (Φ saturates to 0/1 outside anyway).
CNDF_DOMAIN = 4.0

def _fit_cndf_poly(degree: int = 9) -> np.ndarray:
    xs = np.linspace(-CNDF_DOMAIN, CNDF_DOMAIN, 2001)
    return np.polynomial.polynomial.polyfit(xs, ndtr(xs), degree)


#: Coefficients c0..c9 of the ninth-degree CNDF approximation.
CNDF_COEFFS = _fit_cndf_poly()


def cndf_poly_reference(x: np.ndarray) -> np.ndarray:
    """Float evaluation of the fitted polynomial (error bound ~1e-3)."""
    return np.polynomial.polynomial.polyval(np.clip(x, -CNDF_DOMAIN, CNDF_DOMAIN), CNDF_COEFFS)


class BlackScholesApp(Application):
    """European call pricing over a batch of options."""

    name = "blackscholes"
    category = "Finance"
    paper_input = "1 x 256M x 9 (9 GB)"

    def default_params(self) -> Dict[str, int]:
        return {"n_options": 1 << 16}

    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        n = params.get("n_options", 1 << 16)
        side = int(np.sqrt(n))
        n = side * side  # options arranged as a matrix for pairwise ops
        rng = np.random.default_rng(seed)
        spot = rng.uniform(20.0, 120.0, n)
        return {
            "spot": spot,
            # Near-the-money strikes keep prices bounded away from zero
            # (deep out-of-the-money prices underflow any 8-bit path and
            # make relative-error metrics meaningless).
            "strike": spot * rng.uniform(0.8, 1.2, n),
            "tte": rng.uniform(0.25, 2.0, n),
            "rate": np.full(n, 0.02),
            "vol": rng.uniform(0.2, 0.6, n),
        }

    # -- shared math ---------------------------------------------------------

    @staticmethod
    def _d1_d2(inputs: Dict[str, np.ndarray]):
        s, k, t = inputs["spot"], inputs["strike"], inputs["tte"]
        r, v = inputs["rate"], inputs["vol"]
        d1 = (np.log(s / k) + (r + 0.5 * v**2) * t) / (v * np.sqrt(t))
        d2 = d1 - v * np.sqrt(t)
        return d1, d2

    @staticmethod
    def _price(inputs, nd1, nd2):
        s, k, t = inputs["spot"], inputs["strike"], inputs["tte"]
        r = inputs["rate"]
        return s * nd1 - k * np.exp(-r * t) * nd2

    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        d1, d2 = self._d1_d2(inputs)
        value = self._price(inputs, ndtr(d1), ndtr(d2))
        # Two CNDF evaluations per option at the AxBench reference cost.
        seconds = cpu.transcendental_seconds(2 * value.size)
        return CPUResult(value=value, seconds=seconds)

    def _cndf_device(self, ctx: OpenCtpu, x: np.ndarray, tag: str) -> np.ndarray:
        """Horner evaluation of the degree-9 polynomial on the TPUs.

        The d-value grid is the first operand of every ``mul`` so it
        stays resident on-chip across the nine recurrence steps
        (``data_name`` caching).
        """
        cpu = ctx.platform.cpu
        side = int(np.sqrt(x.size))
        grid = np.clip(x, -CNDF_DOMAIN, CNDF_DOMAIN).reshape(side, side)
        acc = np.full_like(grid, CNDF_COEFFS[-1])
        prev_task = None
        for c in CNDF_COEFFS[-2::-1]:
            deps = [prev_task] if prev_task is not None else []
            acc = tpu_mul(ctx, grid, acc, data_name=f"bs-grid-{tag}", depends_on=deps)
            prev_task = ctx.last_task
            acc = acc + c  # scalar coefficient add on the host
            ctx.host_compute(cpu.stream_seconds(acc.size * 8), label="horner-add")
        return acc.ravel()

    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        cpu = ctx.platform.cpu
        d1, d2 = self._d1_d2(inputs)
        # d1/d2 preparation stays on the host (log/sqrt, one pass).
        ctx.host_compute(cpu.stream_seconds(d1.size * 8 * 6), label="d1d2")
        nd1 = self._cndf_device(ctx, d1, "d1")
        nd2 = self._cndf_device(ctx, d2, "d2")
        value = self._price(inputs, nd1, nd2)
        ctx.host_compute(cpu.stream_seconds(value.size * 8 * 4), label="pricing")
        return self._collect(ctx, value, [])
