"""Common application interface for the paper's seven workloads (§7.2).

Each application provides, matching the paper's §8 methodology:

* a dataset generator (Table 3, scaled down per DESIGN.md §5),
* a CPU baseline producing the *exact* float result with a calibrated
  single-core wall time, and
* a GPTPU implementation running through the OpenCtpu runtime, returning
  the quantized-path result together with wall time and energy.

Iterative apps call ``ctx.sync()`` at every data dependency boundary
(iterations must serialize); the per-sync reports are aggregated here.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.host.cpu import CPUCoreModel
from repro.host.energy import EnergyReport
from repro.runtime.api import OpenCtpu, SyncReport


@dataclass(frozen=True)
class CPUResult:
    """CPU baseline outcome: exact value + modeled single-core time."""

    value: np.ndarray
    seconds: float


@dataclass(frozen=True)
class GPTPUResult:
    """GPTPU outcome aggregated over all syncs of one run."""

    value: np.ndarray
    wall_seconds: float
    energy: EnergyReport
    instructions: int
    bytes_transferred: int

    @property
    def energy_delay_product(self) -> float:
        """Total energy × total wall time."""
        return self.energy.total_joules * self.wall_seconds


def aggregate_reports(value: np.ndarray, reports: Sequence[SyncReport]) -> GPTPUResult:
    """Fold per-sync reports into one run-level result."""
    if not reports:
        raise ValueError("a GPTPU run must sync at least once")
    wall = sum(r.timeline.makespan for r in reports)
    idle = sum(r.energy.idle_joules for r in reports)
    active = sum(r.energy.active_joules for r in reports)
    return GPTPUResult(
        value=np.asarray(value, dtype=np.float64),
        wall_seconds=wall,
        energy=EnergyReport(wall_seconds=wall, idle_joules=idle, active_joules=active),
        instructions=sum(r.timeline.instructions for r in reports),
        bytes_transferred=sum(r.timeline.bytes_transferred for r in reports),
    )


class Application(abc.ABC):
    """One benchmark application with CPU and GPTPU implementations."""

    #: Benchmark name (Table 3 spelling, lowercase).
    name: str = ""
    #: Table 3 category.
    category: str = ""
    #: The paper's full-scale input description (Table 3).
    paper_input: str = ""

    @abc.abstractmethod
    def default_params(self) -> Dict[str, int]:
        """Scaled-down default problem parameters (DESIGN.md §5)."""

    @abc.abstractmethod
    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        """Synthesize the input dataset."""

    @abc.abstractmethod
    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        """The single-core CPU baseline (§8.2)."""

    @abc.abstractmethod
    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        """The GPTPU implementation (§7.2)."""

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def _collect(ctx: OpenCtpu, value: np.ndarray, reports: List[SyncReport]) -> GPTPUResult:
        """Final sync (if work is pending) and report aggregation."""
        if ctx.pending_operations:
            reports.append(ctx.sync())
        return aggregate_reports(value, reports)
