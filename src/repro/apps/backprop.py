"""Backpropagation (paper §7.2.5, Table 3: 8K×8K, Pattern Recognition).

A "plain-vanilla" two-layer feedforward network trained for one batch:
forward passes are ``tpuGemm`` + pairwise ``add`` (bias) + device
``tanh`` activations, the backward pass uses ``mul`` for the activation
derivative and ``tpuGemm`` for the weight deltas — the §7.2.5
instruction mix.  The final weight update (w += lr·dw) rides the host
aggregation: adding a tiny delta to full-range weights through an 8-bit
pairwise op would floor the update at the weights' quantization step.

The paper's best speedup (4.08×) comes from Rodinia's baseline being
hand-written loops rather than BLAS, so the CPU baseline here charges
the naive-GEMM rate.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps.base import Application, CPUResult, GPTPUResult
from repro.host.cpu import CPUCoreModel
from repro.ops.elementwise import tpu_add, tpu_mul, tpu_tanh
from repro.ops.gemm import tpu_gemm
from repro.runtime.api import OpenCtpu


class BackpropApp(Application):
    """One training step of a 2-layer MLP with tanh activations."""

    name = "backprop"
    category = "Pattern Recognition"
    paper_input = "1 x 8K x 8K (512 MB)"

    learning_rate = 0.01

    def default_params(self) -> Dict[str, int]:
        return {"batch": 2048, "n_in": 2048, "n_hidden": 512, "n_out": 64}

    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        p = {**self.default_params(), **params}
        rng = np.random.default_rng(seed)
        # 1/sqrt(fan-in) initialization keeps pre-activations within ±3,
        # where the device's 8-bit tanh LUT resolves well.
        return {
            "x": rng.uniform(-1.0, 1.0, (p["batch"], p["n_in"])),
            "target": rng.uniform(-0.9, 0.9, (p["batch"], p["n_out"])),
            "w1": rng.normal(0.0, 1.0 / np.sqrt(p["n_in"]), (p["n_in"], p["n_hidden"])),
            "w2": rng.normal(0.0, 1.0 / np.sqrt(p["n_hidden"]), (p["n_hidden"], p["n_out"])),
            "b1": rng.normal(0.0, 0.2, p["n_hidden"]),
            "b2": rng.normal(0.0, 0.2, p["n_out"]),
        }

    # -- shared math -------------------------------------------------------

    def _flops(self, x, w1, w2) -> int:
        batch, n_in = x.shape
        n_hidden, n_out = w2.shape
        gemms = (
            2 * batch * n_in * n_hidden  # forward layer 1
            + 2 * batch * n_hidden * n_out  # forward layer 2
            + 2 * batch * n_hidden * n_out  # delta backprop
            + 2 * n_in * batch * n_hidden  # dW1
            + 2 * n_hidden * batch * n_out  # dW2
        )
        return gemms

    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        x, target = inputs["x"], inputs["target"]
        w1, w2 = self._train_step_float(x, target, inputs["w1"], inputs["w2"],
                                        inputs["b1"], inputs["b2"])
        seconds = self._flops(x, inputs["w1"], w2) / cpu.config.naive_gemm_flops
        seconds += cpu.stream_seconds(8 * (x.size + 4 * target.size))
        return CPUResult(value=self._predict(inputs, w1, w2), seconds=seconds)

    @staticmethod
    def _predict(inputs: Dict[str, np.ndarray], w1: np.ndarray, w2: np.ndarray) -> np.ndarray:
        """Output-layer pre-activations of the updated network.

        The comparable app output: raw weights straddle zero, which makes
        entrywise relative error meaningless, while predictions carry the
        update's full effect.
        """
        x, b1, b2 = inputs["x"], inputs["b1"], inputs["b2"]
        return np.tanh(x @ w1 + b1) @ w2 + b2

    def _train_step_float(
        self,
        x: np.ndarray,
        target: np.ndarray,
        w1: np.ndarray,
        w2: np.ndarray,
        b1: np.ndarray,
        b2: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        h = np.tanh(x @ w1 + b1)
        o = np.tanh(h @ w2 + b2)
        delta_o = (target - o) * (1.0 - o**2)
        delta_h = (delta_o @ w2.T) * (1.0 - h**2)
        w2 = w2 + self.learning_rate * (h.T @ delta_o)
        w1 = w1 + self.learning_rate * (x.T @ delta_h)
        return w1, w2

    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        x, target = inputs["x"], inputs["target"]
        w1, w2 = inputs["w1"], inputs["w2"]
        b1, b2 = inputs["b1"], inputs["b2"]
        cpu = ctx.platform.cpu

        # Forward: tpuGemm + bias add + device tanh per layer, chained
        # through depends_on so the DES timeline honors the dataflow.
        h_pre = tpu_gemm(ctx, x, w1)
        t = ctx.last_task
        h_b = tpu_add(ctx, h_pre, np.broadcast_to(b1, (x.shape[0], b1.size)), depends_on=[t])
        t = ctx.last_task
        h = tpu_tanh(ctx, h_b, depends_on=[t])
        t_h = ctx.last_task
        o_pre = tpu_gemm(ctx, h, w2, depends_on=[t_h])
        t = ctx.last_task
        o_b = tpu_add(ctx, o_pre, np.broadcast_to(b2, (h.shape[0], b2.size)), depends_on=[t])
        t = ctx.last_task
        o = tpu_tanh(ctx, o_b, depends_on=[t])
        t_o = ctx.last_task

        # Output error on the host (cheap), derivative products on-device.
        err = target - o
        ctx.host_compute(cpu.stream_seconds(8 * err.size * 3), label="output-error")
        delta_o = tpu_mul(ctx, err, 1.0 - o**2, depends_on=[t_o])
        t_do = ctx.last_task
        back = tpu_gemm(ctx, delta_o, w2.T, depends_on=[t_do])
        t_back = ctx.last_task
        delta_h = tpu_mul(ctx, back, 1.0 - h**2, depends_on=[t_back, t_h])
        t_dh = ctx.last_task

        # Weight deltas via tpuGemm (§7.2.5: "tpuGEMM to derive weights
        # for the delta matrix"); the += update rides the host
        # aggregation of the delta partials.
        dw2 = tpu_gemm(ctx, h.T, delta_o, depends_on=[t_h, t_do])
        dw1 = tpu_gemm(ctx, x.T, delta_h, depends_on=[t_dh])
        new_w2 = w2 + self.learning_rate * dw2
        new_w1 = w1 + self.learning_rate * dw1
        ctx.host_compute(cpu.stream_seconds(8 * (dw1.size + dw2.size) * 3), label="weight-update")

        value = self._predict(inputs, new_w1, new_w2)
        return self._collect(ctx, value, [])
