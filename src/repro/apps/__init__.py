"""The seven benchmark applications of the paper's evaluation (§7.2, §8).

``APPLICATIONS`` maps Table 3 benchmark names to ready-to-run
:class:`~repro.apps.base.Application` instances.
"""

from typing import Dict

from repro.apps.backprop import BackpropApp
from repro.apps.base import Application, CPUResult, GPTPUResult, aggregate_reports
from repro.apps.blackscholes import BlackScholesApp
from repro.apps.gaussian import GaussianApp
from repro.apps.gemm_app import GemmApp
from repro.apps.hotspot3d import HotSpot3DApp
from repro.apps.lud import LUDApp
from repro.apps.pagerank import PageRankApp


def all_applications() -> Dict[str, Application]:
    """Fresh instances of the seven Table 3 applications."""
    apps = [
        BackpropApp(),
        BlackScholesApp(),
        GaussianApp(),
        GemmApp(),
        HotSpot3DApp(),
        LUDApp(),
        PageRankApp(),
    ]
    return {app.name: app for app in apps}


#: Shared default instances (apps are stateless between runs).
APPLICATIONS: Dict[str, Application] = all_applications()

__all__ = [
    "APPLICATIONS",
    "Application",
    "BackpropApp",
    "BlackScholesApp",
    "CPUResult",
    "GPTPUResult",
    "GaussianApp",
    "GemmApp",
    "HotSpot3DApp",
    "LUDApp",
    "PageRankApp",
    "aggregate_reports",
    "all_applications",
]
