"""GEMM as an application (paper §7.1, Table 3: 2×16K×16K, Linear Algebra)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import Application, CPUResult, GPTPUResult
from repro.baselines.cpu_blas import blas_gemm
from repro.host.cpu import CPUCoreModel
from repro.ops.gemm import tpu_gemm
from repro.runtime.api import OpenCtpu


class GemmApp(Application):
    """Dense matrix multiply: OpenBLAS baseline vs conv2D-GEMM (§7.1.2)."""

    name = "gemm"
    category = "Linear Algebra"
    paper_input = "2 x 16K x 16K (1 GB)"

    def __init__(self, method: str = "conv2d") -> None:
        self.method = method

    def default_params(self) -> Dict[str, int]:
        return {"n": 1024}

    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        n = params.get("n", 1024)
        rng = np.random.default_rng(seed)
        return {
            "a": rng.uniform(0.0, 4.0, (n, n)),
            "b": rng.uniform(0.0, 4.0, (n, n)),
        }

    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        timed = blas_gemm(inputs["a"], inputs["b"], cpu)
        return CPUResult(value=timed.value, seconds=timed.seconds)

    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        value = tpu_gemm(ctx, inputs["a"], inputs["b"], method=self.method)
        return self._collect(ctx, value, [])
