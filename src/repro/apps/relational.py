"""Relational analytics on Edge TPUs (§10 extension).

The paper's related work cites Holanda & Mühleisen, "Relational queries
with a tensor processing unit" [92], among the emerging TPU uses GPTPU
should enable.  This extension application runs the analytical query

    SELECT region, SUM(m_1), ..., SUM(m_c)
    FROM   sales
    WHERE  region IN (...)          -- selection mask
    GROUP  BY region

as tensor algebra:

* **selection** is a pairwise ``mul`` with the 0/1 predicate mask,
* **grouped aggregation** is a GEMM — ``Gᵀ @ M`` where ``G`` is the
  rows×groups one-hot group-indicator matrix and ``M`` the masked
  measures — so the whole WHERE + GROUP BY pipeline becomes the exact
  instruction mix the Tensorizer already optimizes.

The mapping is exact and the accuracy sub-percent, but the workload
sits on the wrong side of the paper's own applicability boundary
(§8.2: Edge TPUs are not expected to win workloads without matrix-level
arithmetic intensity): a GROUP BY does O(1) useful work per byte, and
every byte pays the 6 ms/MB PCIe toll, so the CPU's cache-resident
hash aggregation stays ahead.  The extension benchmark measures that
boundary quantitatively — the cited TPU-database work [92] used a
Cloud-class part with device-resident tables for the same reason.

Not part of the Fig. 7 suite — registered in ``EXTENSIONS``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import Application, CPUResult, GPTPUResult
from repro.host.cpu import CPUCoreModel
from repro.ops.elementwise import tpu_mul
from repro.ops.gemm import tpu_gemm
from repro.runtime.api import OpenCtpu

#: Hash-aggregation throughput of the CPU baseline engine, in
#: (row, measure) cells per second — a vectorized columnar engine on one
#: core (~8 bytes/cell at DDR4 stream rates with hashing overhead).
CPU_CELLS_PER_SEC = 250e6


class RelationalApp(Application):
    """Masked multi-measure GROUP BY aggregation."""

    name = "relational"
    category = "Analytics (extension)"
    paper_input = "— (§10 extension, after [92])"

    def default_params(self) -> Dict[str, int]:
        return {"rows": 1 << 18, "groups": 128, "measures": 64}

    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        p = {**self.default_params(), **params}
        rng = np.random.default_rng(seed)
        groups = rng.integers(0, p["groups"], p["rows"])
        return {
            "group_of_row": groups,
            "measures": rng.uniform(0.0, 4.0, (p["rows"], p["measures"])),
            # The WHERE clause keeps ~half the groups.
            "selected_groups": (rng.uniform(size=p["groups"]) < 0.5).astype(np.float64),
        }

    # -- shared helpers -------------------------------------------------------

    @staticmethod
    def _indicator(group_of_row: np.ndarray, n_groups: int) -> np.ndarray:
        onehot = np.zeros((group_of_row.size, n_groups), dtype=np.float64)
        onehot[np.arange(group_of_row.size), group_of_row] = 1.0
        return onehot

    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        groups = inputs["group_of_row"]
        measures = inputs["measures"]
        keep = inputs["selected_groups"]
        n_groups = keep.size
        mask = keep[groups]
        out = np.zeros((n_groups, measures.shape[1]))
        np.add.at(out, groups, measures * mask[:, None])
        seconds = measures.size / CPU_CELLS_PER_SEC
        return CPUResult(value=out, seconds=seconds)

    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        groups = inputs["group_of_row"]
        measures = inputs["measures"]
        keep = inputs["selected_groups"]
        n_groups = keep.size
        cpu = ctx.platform.cpu

        # Host: expand the group keys to the one-hot indicator and the
        # row mask (columnar dictionary decode; one pass each).
        indicator = self._indicator(groups, n_groups)
        mask = keep[groups]
        ctx.host_compute(cpu.stream_seconds(groups.size * 8 * 2), label="dictionary-decode")

        # Device: WHERE as pairwise mul, GROUP BY + SUM as one fat GEMM.
        masked = tpu_mul(ctx, measures, np.broadcast_to(mask[:, None], measures.shape))
        t_mask = ctx.last_task
        aggregates = tpu_gemm(ctx, indicator.T, masked, depends_on=[t_mask])
        return self._collect(ctx, aggregates, [])


#: Extension applications — not part of the paper's Table 3 suite.
EXTENSIONS: Dict[str, Application] = {"relational": RelationalApp()}
