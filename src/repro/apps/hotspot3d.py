"""HotSpot3D thermal simulation (paper §7.2.2, Table 3: 8×8K×8K, Physics).

Models the temperature of a 3D-stacked chip: each grid point relaxes
toward the weighted average of its in-plane neighbors (a 3×3 stencil),
its vertical neighbors, and the local power dissipation.

The GPTPU implementation "naturally map[s] to conv2d with a 3x3 kernel
without striding" for the in-plane part; the thin vertical coupling and
power injection stay on the host CPU (§6.2.1's aggregation pattern),
charged through ``host_compute``.  Data movement dominates — the paper's
smallest speedup (1.14×) — because every layer crosses PCIe twice per
iteration.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import Application, CPUResult, GPTPUResult
from repro.host.cpu import CPUCoreModel
from repro.ops.conv import tpu_stencil2d
from repro.runtime.api import OpenCtpu

#: In-plane relaxation stencil (center keeps most weight).
STENCIL = np.array(
    [
        [0.025, 0.0500, 0.025],
        [0.050, 0.6500, 0.050],
        [0.025, 0.0500, 0.025],
    ]
)
#: Vertical coupling coefficient per neighbor layer.
CZ = 0.05
#: Power-injection step.
DT = 0.5


def _pad_edge(layer: np.ndarray) -> np.ndarray:
    """Replicate-pad by one cell so the valid conv keeps the grid size."""
    return np.pad(layer, 1, mode="edge")


def _z_term(temps: np.ndarray, z: int) -> np.ndarray:
    layers = temps.shape[0]
    above = temps[z + 1] if z + 1 < layers else temps[z]
    below = temps[z - 1] if z - 1 >= 0 else temps[z]
    return CZ * (above + below - 2.0 * temps[z])


class HotSpot3DApp(Application):
    """Iterative 2.5-D thermal relaxation."""

    name = "hotspot3d"
    category = "Physics Simulation"
    paper_input = "8 x 8K x 8K (2 GB)"

    def default_params(self) -> Dict[str, int]:
        return {"n": 512, "layers": 4, "iterations": 4}

    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        n = params.get("n", 512)
        layers = params.get("layers", 4)
        rng = np.random.default_rng(seed)
        temps = rng.uniform(40.0, 80.0, (layers, n, n))
        power = rng.uniform(0.0, 4.0, (layers, n, n))
        return {
            "temps": temps,
            "power": power,
            "iterations": np.array(params.get("iterations", 4)),
        }

    def _step_cpu(self, temps: np.ndarray, power: np.ndarray) -> np.ndarray:
        from scipy.signal import correlate2d

        out = np.empty_like(temps)
        for z in range(temps.shape[0]):
            plane = correlate2d(_pad_edge(temps[z]), STENCIL, mode="valid")
            out[z] = plane + _z_term(temps, z) + DT * power[z]
        return out

    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        temps = inputs["temps"].copy()
        power = inputs["power"]
        iterations = int(inputs["iterations"])
        for _ in range(iterations):
            temps = self._step_cpu(temps, power)
        points = temps.size * iterations
        return CPUResult(value=temps, seconds=cpu.stencil_seconds(points))

    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        temps = inputs["temps"].copy()
        power = inputs["power"]
        iterations = int(inputs["iterations"])
        layers = temps.shape[0]
        cpu = ctx.platform.cpu
        reports = []
        stencil_gain = float(STENCIL.sum())
        for _ in range(iterations):
            new = np.empty_like(temps)
            for z in range(layers):
                # Mean-shift before quantizing: temperatures sit in a
                # narrow band around a large offset, and the stencil is
                # affine — conv(T) = conv(T−μ) + μ·Σk — so the device
                # only sees the ±deviation range (§6.2.2 calibration).
                mu = float(temps[z].mean())
                plane = tpu_stencil2d(
                    ctx, _pad_edge(temps[z] - mu), STENCIL, model_name="hotspot-k"
                )
                new[z] = plane + mu * stencil_gain + _z_term(temps, z) + DT * power[z]
            # Vertical coupling + power injection stay on the host.
            ctx.host_compute(
                cpu.stream_seconds(temps.size * 8 * 3), label="z-coupling"
            )
            temps = new
            reports.append(ctx.sync())  # iterations serialize
        return self._collect(ctx, temps, reports)
