"""LU decomposition (paper §7.2.3, Table 3: 4K×4K, Linear Algebra).

"Our GPTPU LUD implementation uses the recursive algorithm via crop,
FullyConnected, and conv2D to partition matrices and perform appropriate
operations on different combinations of the partitioned matrices."

Structure (recursive halving into four sub-matrices, no pivoting —
standard on diagonally dominant inputs):

* ``crop`` partitions A into A11/A12/A21/A22 **on the device**,
* A11 is factored by recursion; triangular solves stay on the host CPU
  (sequential, latency-bound),
* the Schur complement A22 − L21·U12 — all the flops — runs as conv2D
  GEMM (§7.1.2), with the subtraction folded into the host-side
  aggregation of the partial products (§6.2.1).

The recursion makes only the current Schur update parallel, which is why
LUD is the one application that does not scale with more TPUs (Fig. 8b):
"LUD ... already partitions matrices into four sub-matrices ... making
it difficult for Tensorizer to scale the performance in only one of the
four partitions."
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.linalg import solve_triangular

from repro.apps.base import Application, CPUResult, GPTPUResult
from repro.host.cpu import CPUCoreModel
from repro.ops.crop_pad import tpu_crop
from repro.ops.gemm import tpu_gemm
from repro.runtime.api import OpenCtpu


def make_dd_matrix(n: int, seed: int) -> np.ndarray:
    """A diagonally dominant matrix (stable without pivoting)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.0, 1.0, (n, n))
    a[np.diag_indices(n)] += a.sum(axis=1)
    return a


def packed_lu_cpu(a: np.ndarray) -> np.ndarray:
    """Doolittle LU without pivoting, packed (L below, U on/above diag)."""
    lu = np.asarray(a, dtype=np.float64).copy()
    n = lu.shape[0]
    for k in range(n - 1):
        lu[k + 1 :, k] /= lu[k, k]
        lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    return lu


class LUDApp(Application):
    """Recursive blocked LU decomposition."""

    name = "lud"
    category = "Linear Algebra"
    paper_input = "1 x 4K x 4K (64 MB)"

    def __init__(self, leaf: int = 64) -> None:
        self.leaf = leaf

    def default_params(self) -> Dict[str, int]:
        return {"n": 1024}

    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        return {"a": make_dd_matrix(params.get("n", 256), seed)}

    @staticmethod
    def _reconstruct(packed: np.ndarray) -> np.ndarray:
        """L·U from the packed factors — the comparable app output.

        Packed LU entries straddle zero, which makes entrywise relative
        error meaningless; the reconstruction (≈ A) is the quantity both
        implementations should agree on.
        """
        n = packed.shape[0]
        l = np.tril(packed, -1) + np.eye(n)
        return l @ np.triu(packed)

    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        a = inputs["a"]
        n = a.shape[0]
        # Rodinia's LUD baseline: (2/3)n³ multiply-adds of hand-written code.
        seconds = (2.0 / 3.0) * n**3 * 2.0 / cpu.config.lud_effective_flops
        return CPUResult(value=self._reconstruct(packed_lu_cpu(a)), seconds=seconds)

    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        a = np.asarray(inputs["a"], dtype=np.float64)
        cpu = ctx.platform.cpu
        reports = []
        packed = self._lud_recursive(ctx, cpu, a, reports)
        return self._collect(ctx, self._reconstruct(packed), reports)

    def _lud_recursive(self, ctx: OpenCtpu, cpu: CPUCoreModel, a: np.ndarray, reports) -> np.ndarray:
        n = a.shape[0]
        if n <= self.leaf:
            # Leaf panel: host CPU factorization (charged).
            ctx.host_compute(cpu.scalar_seconds(max(1, 2 * n**3 // 3)), label="lud-panel")
            return packed_lu_cpu(a)
        b = n // 2
        # Device-side partitioning into four sub-matrices via crop
        # (the §7.2.3 recipe; Fig. 8b's "partitions matrices into four
        # sub-matrices").  Crop stages quantized tiles on the device for
        # the downstream GEMM; the host keeps its float copy, so the
        # numerical path uses exact slices — an 8-bit round trip through
        # crop would wipe out the off-diagonal entries of a diagonally
        # dominant matrix (diag ≈ n/2 vs off-diag ≈ 1).
        for box in ((0, 0, b, b), (0, b, b, n - b), (b, 0, n - b, b), (b, b, n - b, n - b)):
            tpu_crop(ctx, a, box)
        a11 = a[:b, :b]
        a12 = a[:b, b:]
        a21 = a[b:, :b]
        a22 = a[b:, b:]

        lu11 = self._lud_recursive(ctx, cpu, a11, reports)
        l11 = np.tril(lu11, -1) + np.eye(b)
        u11 = np.triu(lu11)
        # Triangular solves on the host (sequential, latency-bound).
        u12 = solve_triangular(l11, a12, lower=True, unit_diagonal=True)
        l21 = solve_triangular(u11.T, a21.T, lower=True).T
        # BLAS trsm with many right-hand sides runs at GEMM-class rates.
        ctx.host_compute(cpu.gemm_seconds(b, b, n - b), label="lud-trsm")

        # Schur complement on the TPUs: the O(n³) work.  The subtraction
        # rides the CPU aggregation of the GEMM partials (§6.2.1).  The
        # four-partition recursion caps the chunk fan-out — "making it
        # difficult for Tensorizer to scale the performance in only one
        # of the four partitions" (§9.3) — hence LUD's flat Fig. 8 curve.
        prod = tpu_gemm(ctx, l21, u12, method="conv2d", chunks=4)
        schur = a22 - prod
        ctx.host_compute(cpu.stream_seconds(schur.size * 8 * 3), label="schur-sub")
        reports.append(ctx.sync())  # the recursion depends on schur

        packed = np.empty_like(a)
        packed[:b, :b] = lu11
        packed[:b, b:] = u12
        packed[b:, :b] = l21
        packed[b:, b:] = self._lud_recursive(ctx, cpu, schur, reports)
        return packed
