"""PageRank via the power method (paper §7.2.1, Table 3: 32K×32K, Graph).

Both implementations iterate r ← d·Mᵀr + (1−d)/n on the column-stochastic
link matrix.  The CPU baseline walks the dense adjacency edge-at-a-time
(GraphBLAST-style); the GPTPU implementation issues "one FullyConnected
instruction for each adjacency-matrix multiplication with a single
vector", keeping the quantized adjacency tiles resident on-chip across
iterations (they fit the 8 MB memory at this scale).

Because int8 codes cannot represent probability-scale values directly,
the runtime renormalizes the rank vector to unit max before each device
matvec and folds the factor back on the host — standard dynamic scaling
(§6.2.2) tracked exactly.
"""

from __future__ import annotations

from typing import Dict

import networkx as nx
import numpy as np

from repro.apps.base import Application, CPUResult, GPTPUResult
from repro.host.cpu import CPUCoreModel
from repro.ops.gemm import tpu_matvec
from repro.runtime.api import OpenCtpu


def make_link_matrix(n: int, seed: int, avg_degree: int = 16) -> np.ndarray:
    """Column-stochastic link matrix of a random directed graph."""
    graph = nx.gnm_random_graph(n, n * avg_degree, seed=seed, directed=True)
    adj = nx.to_numpy_array(graph, dtype=np.float64).T  # adj[i, j] = edge j→i
    out_degree = adj.sum(axis=0)
    dangling = out_degree == 0
    adj[:, dangling] = 1.0  # dangling nodes link everywhere
    out_degree[dangling] = n
    return adj / out_degree


class PageRankApp(Application):
    """Power-method PageRank."""

    name = "pagerank"
    category = "Graph"
    paper_input = "1 x 32K x 32K (4 GB)"

    damping = 0.85

    def default_params(self) -> Dict[str, int]:
        return {"n": 2048, "iterations": 15}

    def generate(self, seed: int = 0, **params: int) -> Dict[str, np.ndarray]:
        n = params.get("n", 2048)
        return {
            "link": make_link_matrix(n, seed),
            "iterations": np.array(params.get("iterations", 15)),
        }

    def _power_iteration(self, link: np.ndarray, rank: np.ndarray) -> np.ndarray:
        n = link.shape[0]
        return self.damping * (link @ rank) + (1.0 - self.damping) / n

    def run_cpu(self, inputs: Dict[str, np.ndarray], cpu: CPUCoreModel) -> CPUResult:
        link = inputs["link"]
        iterations = int(inputs["iterations"])
        n = link.shape[0]
        rank = np.full(n, 1.0 / n)
        for _ in range(iterations):
            rank = self._power_iteration(link, rank)
        # The dense baseline touches every matrix entry per iteration.
        seconds = iterations * cpu.graph_traversal_seconds(n * n)
        return CPUResult(value=rank, seconds=seconds)

    def run_gptpu(self, inputs: Dict[str, np.ndarray], ctx: OpenCtpu) -> GPTPUResult:
        link = inputs["link"]
        iterations = int(inputs["iterations"])
        n = link.shape[0]
        rank = np.full(n, 1.0 / n)
        reports = []
        link_t = link.T  # tpu_matvec computes vec @ mat = (mat.T @ vec).T
        for _ in range(iterations):
            scale = float(rank.max())
            product = tpu_matvec(ctx, rank / scale, link_t, model_name="pagerank-link")
            rank = self.damping * scale * product + (1.0 - self.damping) / n
            reports.append(ctx.sync())  # iterations serialize
        return self._collect(ctx, rank, reports)
