"""§3.3 / §6.2.3 — model-creation overhead: TFLite flow vs Tensorizer.

The paper: the stock Python TFLite flow takes 2.7 s to turn a 2K×2K
matrix into a device model; the C-based Tensorizer writes the
reverse-engineered binary format directly in 1.8 ms — a 1500× speedup,
shorter than the matrix's own PCIe transfer, which is what lets the
runtime hide model creation under data movement.
"""

import numpy as np
import pytest

from repro.bench import comparison_table, format_table
from repro.edgetpu.compiler import ReferenceCompiler, TensorizerModelBuilder
from repro.edgetpu.timing import TimingModel


def test_model_creation_speedup(benchmark, report):
    sizes = [256, 512, 1024, 2048]
    slow = ReferenceCompiler()
    fast = TensorizerModelBuilder()

    def run():
        rows = []
        for n in sizes:
            raw = np.random.default_rng(n).uniform(-1, 1, (n, n))
            s = slow.compile(raw)
            f = fast.compile(raw)
            assert s.blob == f.blob  # identical bytes, only cost differs
            rows.append((n, s.build_seconds, f.build_seconds, s.build_seconds / f.build_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["matrix", "TFLite flow (s)", "Tensorizer (s)", "speedup"],
            [(f"{n}x{n}", f"{s:.4f}", f"{f:.6f}", f"{sp:.0f}x") for n, s, f, sp in rows],
            title="§6.2.3 model-creation latency: stock toolchain vs Tensorizer",
        )
    )
    by_size = {n: (s, f, sp) for n, s, f, sp in rows}
    s2k, f2k, sp2k = by_size[2048]
    assert s2k == pytest.approx(2.7, rel=0.02)  # §3.3
    assert f2k == pytest.approx(1.8e-3, rel=0.02)  # §6.2.3
    assert sp2k == pytest.approx(1500, rel=0.05)  # "a 1500x speedup"


def test_model_build_hides_under_transfer(benchmark, report):
    timing = TimingModel()

    def run():
        rows = []
        for n in (512, 1024, 2048, 4096):
            build = timing.tensorizer_build_seconds(n * n)
            transfer = timing.transfer_seconds(n * n)
            rows.append((n, build, transfer))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        comparison_table(
            "§6.2.3: Tensorizer build vs the same matrix's PCIe transfer "
            "(build < transfer enables full overlap)",
            [(f"{n}x{n} build/transfer", 1.0, build / transfer) for n, build, transfer in rows],
            value_name="build/transfer ratio",
        )
    )
    for _n, build, transfer in rows:
        assert build < transfer  # the overlap precondition
