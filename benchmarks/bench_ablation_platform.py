"""Ablations of the platform choices the paper argues for (§2.2, §3.1).

* **PCIe vs USB 3.0 attachment** — §3.1 builds the quad-card PCIe
  machine because it gives "lower latency and better bandwidth compared
  to other Edge TPU interconnect options, such as USB 3.0".  Here the
  same applications run on both attachments.
* **Edge TPU vs Cloud TPU efficiency** — §2.2 chooses Edge TPUs partly
  for performance per watt (2 TOPS/W vs 0.36 TOPS/W).  A Cloud-class
  device is faster per chip but burns ~7× more energy per unit of work.
"""

import pytest

from repro.bench import comparison_table, format_table
from repro.bench.harness import run_app
from repro.config import CLOUD_TPU, EdgeTPUConfig, SystemConfig

APPS = ("gemm", "hotspot3d", "pagerank")
PARAMS = {
    "gemm": {"n": 512},
    "hotspot3d": {"n": 256, "layers": 2, "iterations": 3},
    "pagerank": {"n": 1024, "iterations": 8},
}


def test_pcie_vs_usb_attachment(benchmark, report):
    def run():
        rows = []
        usb_config = SystemConfig().with_interconnect("usb")
        for app in APPS:
            pcie = run_app(app, params=PARAMS[app])
            usb = run_app(app, params=PARAMS[app], config=usb_config)
            rows.append(
                (app, pcie.gptpu.wall_seconds, usb.gptpu.wall_seconds,
                 usb.gptpu.wall_seconds / pcie.gptpu.wall_seconds)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["app", "PCIe wall (s)", "USB 3.0 wall (s)", "USB slowdown"],
            [(a, f"{p:.4f}", f"{u:.4f}", f"{s:.2f}x") for a, p, u, s in rows],
            title="Ablation: §3.1 attachment choice (1 Edge TPU)",
        )
    )
    # USB is slower for every workload; transfer-heavy apps suffer most.
    slowdowns = {a: s for a, _p, _u, s in rows}
    for app, slowdown in slowdowns.items():
        assert slowdown > 1.1, app
    assert slowdowns["hotspot3d"] > slowdowns["gemm"] * 0.9


def test_edge_vs_cloud_tpu_efficiency(benchmark, report):
    def run():
        from dataclasses import replace

        n = 1024
        edge = run_app("gemm", params={"n": n})
        # The Cloud device draws its §2.2 TDP while active.
        cloud_cfg = SystemConfig(
            edgetpu=replace(CLOUD_TPU, active_power_watts=CLOUD_TPU.tdp_watts)
        )
        cloud = run_app("gemm", params={"n": n}, config=cloud_cfg)
        return edge, cloud

    edge, cloud = benchmark.pedantic(run, rounds=1, iterations=1)
    edge_active = edge.gptpu.energy.active_joules
    cloud_active = cloud.gptpu.energy.active_joules
    report(
        comparison_table(
            "Ablation: §2.2 Edge vs Cloud-class TPU on a 1024² GEMM",
            [
                ("TOPS/W ratio (Edge / Cloud)", 2.0 / 0.36,
                 EdgeTPUConfig().peak_tops_per_watt / CLOUD_TPU.peak_tops_per_watt),
                ("Cloud speedup over Edge (wall)", None,
                 edge.gptpu.wall_seconds / cloud.gptpu.wall_seconds),
                ("Cloud active energy / Edge", None, cloud_active / edge_active),
            ],
        )
    )
    # Cloud is faster per device...
    assert cloud.gptpu.wall_seconds < edge.gptpu.wall_seconds
    # ...but spends more active energy on the same work (the §2.2
    # perf-per-watt argument; transfers dilute the 5.6x chip-level gap).
    assert cloud_active > 1.5 * edge_active
