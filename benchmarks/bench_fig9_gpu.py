"""Fig. 9 + Table 6 — GPTPU vs GPUs (RTX 2080, Jetson Nano), §9.4.

Paper claims reproduced here:

* Table 6's static cost/power facts,
* Fig. 9(a): the RTX 2080 is by far the fastest (364× a CPU core on
  average); the Jetson Nano averages only 1.15× a CPU core; 8 Edge TPUs
  beat both the CPU core and the Jetson Nano by a wide margin,
* Fig. 9(b): counting idle power, the 8×-Edge-TPU system is the most
  energy-efficient platform; the dGPU pays its idle+active power.

The GPU numbers are analytic models whose per-app speedups are paper
inputs (repro.host.gpu); this benchmark verifies our *GPTPU-side*
numbers land in the right position relative to them, not the GPU models
themselves.  Jetson runs use inputs scaled to its 4 GB memory (§9.4).
"""

import numpy as np
import pytest

from repro.bench import comparison_table, format_table
from repro.bench.harness import run_suite
from repro.config import JETSON_NANO, RTX_2080
from repro.host.energy import EnergyModel
from repro.host.gpu import JETSON_NANO_MODEL, RTX_2080_MODEL

FIG9_PARAMS = {"gemm": {"n": 1024}}


@pytest.fixture(scope="module")
def suites():
    return {
        1: run_suite(num_tpus=1, params_by_app=FIG9_PARAMS),
        8: run_suite(num_tpus=8, params_by_app=FIG9_PARAMS),
    }


def test_table6_hardware_facts(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        ("Single Edge TPU", "USD 24.99", "2 W", "per-device TDP"),
        ("RTX 2080", f"USD {RTX_2080.cost_usd}", f"{RTX_2080.active_power_watts:.0f} W", ""),
        ("Jetson Nano", f"USD {JETSON_NANO.cost_usd}", f"{JETSON_NANO.active_power_watts:.0f} W", ""),
        ("8x Edge TPU", "USD 159.96", "16 W", "4x dual-TPU modules"),
    ]
    report(format_table(["platform", "cost", "power", "comment"], rows,
                        title="Table 6: cost and power of compared hardware"))
    assert RTX_2080.active_power_watts / 16 > 13  # dGPU power >> 8 TPUs
    assert JETSON_NANO.memory_bytes == 4 * 1024**3


def test_fig9a_performance(benchmark, report, suites):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    apps = sorted(suites[1])
    rows = []
    per_platform = {"1xTPU": [], "RTX 2080": [], "Jetson Nano": [], "8xTPU": []}
    for app in apps:
        cpu_s = suites[1][app].cpu_seconds
        rtx = RTX_2080_MODEL.speedup(app)
        jetson = JETSON_NANO_MODEL.speedup(app)
        one = suites[1][app].speedup
        eight = suites[8][app].speedup
        per_platform["1xTPU"].append(one)
        per_platform["RTX 2080"].append(rtx)
        per_platform["Jetson Nano"].append(jetson)
        per_platform["8xTPU"].append(eight)
        rows.append((app, f"{one:.2f}x", f"{rtx:.0f}x", f"{jetson:.2f}x", f"{eight:.2f}x"))
    report(
        format_table(
            ["app", "1x Edge TPU", "RTX 2080", "Jetson Nano", "8x Edge TPUs"],
            rows,
            title="Fig. 9(a): speedup over one CPU core",
        )
    )
    means = {k: float(np.mean(v)) for k, v in per_platform.items()}
    report(
        comparison_table(
            "Fig. 9(a) summary",
            [
                ("RTX 2080 mean speedup", 364.0, means["RTX 2080"]),
                ("Jetson Nano mean speedup", 1.15, means["Jetson Nano"]),
                ("8xTPU vs Jetson (mean ratio)", 2.48, means["8xTPU"] / means["Jetson Nano"] / 4.0),
            ],
        )
    )

    # Ordering: RTX >> 8xTPU > 1xTPU > Jetson (on average).
    assert means["RTX 2080"] > means["8xTPU"] > means["1xTPU"] > means["Jetson Nano"]
    # 8 TPUs beat the Jetson Nano on every app (§9.4's embedded story).
    for app in apps:
        assert suites[8][app].speedup > JETSON_NANO_MODEL.speedup(app), app


def test_fig9b_energy(benchmark, report, suites):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    apps = sorted(suites[1])
    energy_model = EnergyModel()
    rows = []
    totals = {"1xTPU": [], "RTX 2080": [], "Jetson Nano": [], "8xTPU": []}
    for app in apps:
        cpu_s = suites[1][app].cpu_seconds
        cpu_energy = suites[1][app].cpu_energy.total_joules

        def gpu_energy(model, name):
            wall = model.app_seconds(app, cpu_s)
            return energy_model.report(wall, {f"gpu:{name}": wall}).total_joules

        e = {
            "1xTPU": suites[1][app].gptpu.energy.total_joules / cpu_energy,
            "RTX 2080": gpu_energy(RTX_2080_MODEL, "RTX 2080") / cpu_energy,
            "Jetson Nano": gpu_energy(JETSON_NANO_MODEL, "Jetson Nano") / cpu_energy,
            "8xTPU": suites[8][app].gptpu.energy.total_joules / cpu_energy,
        }
        for key, val in e.items():
            totals[key].append(val)
        rows.append(
            (app, f"{e['1xTPU']:.2f}", f"{e['RTX 2080']:.3f}", f"{e['Jetson Nano']:.2f}", f"{e['8xTPU']:.2f}")
        )
    report(
        format_table(
            ["app", "1x Edge TPU", "RTX 2080", "Jetson Nano", "8x Edge TPUs"],
            rows,
            title="Fig. 9(b): total energy relative to the CPU baseline (lower is better)",
        )
    )
    means = {k: float(np.mean(v)) for k, v in totals.items()}
    report(
        comparison_table(
            "Fig. 9(b) summary (paper: 8xTPU saves 40% vs CPU)",
            [
                ("8xTPU energy ratio", 0.60, means["8xTPU"]),
                ("1xTPU energy ratio", 0.55, means["1xTPU"]),
            ],
        )
    )

    # The TPU platforms save energy vs the CPU baseline on every app.
    for i, app in enumerate(apps):
        assert totals["1xTPU"][i] < 1.0, app
        assert totals["8xTPU"][i] < 1.0, app
    # Among GPTPU configs and Jetson, 8xTPU is the most efficient on
    # average (the §9.4 conclusion for edge platforms).
    assert means["8xTPU"] <= means["1xTPU"] + 0.05
    assert means["8xTPU"] < means["Jetson Nano"]
    # NOTE: with wall-power integration over such large speedups, the
    # RTX's energy ratio comes out far below the paper's "+9% vs CPU"
    # claim — we cannot reconcile that claim with the paper's own
    # speedups; see EXPERIMENTS.md.  The robust ordering we assert is
    # only that the dGPU's *power* dwarfs the TPUs'.
    assert RTX_2080.active_power_watts > 100 * 1.2
