"""Ablation: precision vs cost of the §10 portion-wise GEMM.

Related work (§10): unlike NPUs, "GPTPU can achieve the desired level
of precision by iteratively computing on different portions of raw
input numbers."  This sweep quantifies the trade: output-requantization
error falls ≈ √k_split while instructions and wall time grow ≈ k_split.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.host.platform import Platform
from repro.metrics import rmse_percent
from repro.ops import tpu_gemm_precise
from repro.runtime.api import OpenCtpu

N = 384
SPLITS = (1, 2, 4, 8)


def test_precision_cost_tradeoff(benchmark, report):
    rng = np.random.default_rng(9)
    a = rng.uniform(0, 4, (N, N))
    b = rng.uniform(0, 4, (N, N))
    ref = a @ b

    def run():
        rows = []
        for s in SPLITS:
            ctx = OpenCtpu(Platform.with_tpus(1))
            out = tpu_gemm_precise(ctx, a, b, k_split=s)
            timeline = ctx.sync().timeline
            rows.append(
                (s, rmse_percent(out, ref), timeline.instructions, timeline.makespan)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["k_split", "RMSE %", "instructions", "wall (s)"],
            [(s, f"{r:.4f}", i, f"{w:.4f}") for s, r, i, w in rows],
            title=f"Ablation: §10 portion-wise GEMM precision sweep ({N}²)",
        )
    )

    errors = [r for _s, r, _i, _w in rows]
    walls = [w for _s, _r, _i, w in rows]
    # More portions -> strictly more time, materially less error.
    assert walls == sorted(walls)
    assert errors[-1] < errors[0] * 0.7
    # All variants stay sub-percent.
    assert max(errors) < 1.0
