"""NN inference benchmark: per-layer attribution + warm-plan speedup.

Two measurements over the :mod:`repro.nn` workloads (ISSUE §10):

* **Per-layer latency attribution** — ``lenet`` and ``attention`` run
  end-to-end on an 8-TPU pool with ``sync_per_layer=True``; each
  layer's simulated wall and device-busy seconds come from the
  ``nn:<model>/<layer>`` telemetry spans that ``Sequential.forward``
  records into ``layer_reports``.  Cold (first inference, plans
  captured) and warm (plans replayed) passes are both archived.

* **Warm-bind host speedup** — for each device layer of LeNet the conv
  lowering is timed three ways, exactly like ``bench_plan_cache.py``:
  ``fresh_lower_seconds`` (no cache), ``warm_lower_seconds`` (cache
  hit, end-to-end), and ``warm_bind_seconds`` (the ``plan_bind`` span —
  the host work a warm request actually performs).  The acceptance gate
  (ISSUE satellite 5) is ``fresh / bind >= 3`` on every layer after the
  first: once the input geometry repeats, replaying the captured conv
  plan must cut per-request host work at least 3x.

Warm results are asserted bit-identical to the plan-free lowering.
Results land in ``BENCH_nn.json`` at the repo root; see ``docs/nn.md``.

Run with::

    PYTHONPATH=src python benchmarks/bench_nn_inference.py
    PYTHONPATH=src python -m pytest benchmarks/bench_nn_inference.py -m slow
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.edgetpu.isa import Opcode
from repro.host.platform import Platform
from repro.nn.models import MODELS, sample_input
from repro.plan.cache import PlanCache
from repro.runtime.api import OpenCtpu
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.runtime.tensorizer import Tensorizer, TensorizerOptions
from repro.telemetry.tracer import SpanTracer

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_nn.json"

MODEL_TPUS = 8
FRESH_REPS = 5
WARM_REPS = 7

#: LeNet's device layers as standalone conv2D_nn requests (the dense
#: stack lowers as 1x1 convs, so these shapes cover the whole model).
LENET_LAYERS = (
    ("conv1", (2, 1, 28, 28), (6, 1, 5, 5), (2, 2, 2, 2)),
    ("conv2", (2, 6, 14, 14), (16, 6, 5, 5), (0, 0, 0, 0)),
    ("dense1", (2, 400, 1, 1), (120, 400, 1, 1), (0, 0, 0, 0)),
    ("dense2", (2, 120, 1, 1), (84, 120, 1, 1), (0, 0, 0, 0)),
)


def _conv_request(x: np.ndarray, w: np.ndarray, padding) -> OperationRequest:
    return OperationRequest(
        task_id=0,
        opcode=Opcode.CONV2D_NN,
        inputs=(x, w),
        quant=QuantMode.SCALE,
        attrs={"stride": (1, 1), "padding": tuple(padding), "relu": True},
    )


def time_layer(name: str, x_shape, w_shape, padding) -> Dict:
    """Fresh / cold-capture / warm-bind timings for one conv layer."""
    rng = np.random.default_rng(len(name))
    x = rng.normal(size=x_shape)
    w = rng.normal(size=w_shape)

    fresh_tz = Tensorizer(options=TensorizerOptions(vectorized=True))
    fresh = float("inf")
    for _ in range(FRESH_REPS):
        start = time.perf_counter()
        fresh_result = fresh_tz.lower(_conv_request(x.copy(), w, padding)).result
        fresh = min(fresh, time.perf_counter() - start)

    tracer = SpanTracer()
    cache = PlanCache()
    tz = Tensorizer(
        options=TensorizerOptions(vectorized=True),
        tracer=tracer,
        plan_cache=cache,
    )
    start = time.perf_counter()
    tz.lower(_conv_request(x.copy(), w, padding))
    cold = time.perf_counter() - start
    tracer.enable()

    warm = bind = float("inf")
    warm_result = None
    for _ in range(WARM_REPS):
        mark = len(tracer.spans)
        start = time.perf_counter()
        warm_result = tz.lower(_conv_request(x.copy(), w, padding)).result
        warm = min(warm, time.perf_counter() - start)
        bind_spans = [s for s in tracer.spans[mark:] if s.name == "plan_bind"]
        assert bind_spans, f"{name}: warm lower emitted no plan_bind span"
        bind = min(bind, sum(s.duration for s in bind_spans))

    return {
        "fresh_lower_seconds": round(fresh, 5),
        "cold_capture_seconds": round(cold, 5),
        "warm_lower_seconds": round(warm, 5),
        "warm_bind_seconds": round(bind, 6),
        "host_speedup": round(fresh / bind, 2),
        "bit_identical": bool(np.array_equal(fresh_result, warm_result)),
    }


def attribute_model(name: str, seed: int = 0) -> Dict:
    """Cold + warm per-layer attribution for one repro.nn model."""
    model = MODELS[name](seed=seed)
    x = sample_input(model, batch=2, seed=seed)
    cache = PlanCache()
    ctx = OpenCtpu(Platform(SystemConfig().with_tpus(MODEL_TPUS)),
                   plan_cache=cache)
    cold_out = model.forward(ctx, x, sync_per_layer=True)
    cold = [dict(r) for r in model.layer_reports]
    warm_out = model.forward(ctx, x, sync_per_layer=True)
    warm = [dict(r) for r in model.layer_reports]
    return {
        "tpus": MODEL_TPUS,
        "input_shape": list(x.shape),
        "cold_layers": cold,
        "warm_layers": warm,
        "cold_wall_seconds": round(sum(r["wall_seconds"] for r in cold), 6),
        "warm_wall_seconds": round(sum(r["wall_seconds"] for r in warm), 6),
        "warm_bit_identical": bool(np.array_equal(cold_out, warm_out)),
        "plan_cache": cache.counters(),
    }


def run_benchmark() -> Dict:
    layers = {
        name: time_layer(name, x_shape, w_shape, padding)
        for name, x_shape, w_shape, padding in LENET_LAYERS
    }
    return {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metric": (
            "host wall-clock seconds per layer lowering; attribution "
            "wall/device seconds are simulated Edge TPU time from the "
            "nn:<model>/<layer> telemetry spans"
        ),
        "layers": layers,
        "attribution": {name: attribute_model(name) for name in sorted(MODELS)},
        "criterion_min_warm_speedup_layer2": min(
            row["host_speedup"]
            for name, row in layers.items()
            if name != LENET_LAYERS[0][0]
        ),
    }


def write_results(results: Dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


@pytest.mark.slow
def test_nn_inference_bench(report):
    results = run_benchmark()
    write_results(results)
    report(json.dumps(results, indent=2))
    for name, row in results["layers"].items():
        assert row["bit_identical"], f"{name}: warm replay is not bit-identical"
    for name, attribution in results["attribution"].items():
        assert attribution["warm_bit_identical"], name
        assert attribution["plan_cache"]["hits"] > 0, name
    # Acceptance gate (ISSUE satellite 5): from the second device layer
    # on, binding the cached conv plan must be >= 3x cheaper on the host
    # than lowering fresh.
    assert results["criterion_min_warm_speedup_layer2"] >= 3.0


if __name__ == "__main__":
    out = run_benchmark()
    write_results(out)
    print(json.dumps(out, indent=2))
    print(f"\nwrote {RESULT_PATH}")
