"""Fig. 8 — parallel processing with multiple Edge TPUs (§9.3).

Paper:

* (a) speedup over one CPU core with 2/4/8 Edge TPUs; 8 TPUs average
  13.86×, while the 8-core OpenMP CPU implementations reach only 2.70×;
* (b) per-app scaling 1→8 TPUs is near-linear for 6 of 7 applications;
  LUD is the exception (its recursion exposes only one of four
  partitions to parallel execution at a time).

Our inputs are scaled down from Table 3 (DESIGN.md §5), which shrinks
the parallel work per dispatch round, so absolute multi-TPU speedups
sit below the paper's; the asserted shape is monotone scaling, LUD
scaling worst, and 8 TPUs decisively beating the 8-core CPU.
"""

import numpy as np
import pytest

from repro.bench import comparison_table, format_table
from repro.bench.harness import mean_speedup, run_suite
from repro.baselines.openmp import openmp_run

TPU_COUNTS = (1, 2, 4, 8)

#: Larger parallel-friendly inputs for the scaling study.
FIG8_PARAMS = {
    "gemm": {"n": 1024},
    "pagerank": {"n": 2048, "iterations": 10},
    "hotspot3d": {"n": 512, "layers": 4, "iterations": 3},
    "gaussian": {"n": 1536},
}


@pytest.fixture(scope="module")
def records_by_tpus():
    return {n: run_suite(num_tpus=n, params_by_app=FIG8_PARAMS) for n in TPU_COUNTS}


def test_fig8a_speedup_vs_cpu(benchmark, report, records_by_tpus):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    apps = sorted(records_by_tpus[1])
    rows = []
    for app in apps:
        cpu_1core = records_by_tpus[1][app].cpu_seconds
        openmp_8 = cpu_1core / openmp_run(cpu_1core, 8)
        row = [app] + [
            f"{records_by_tpus[n][app].speedup:.2f}x" for n in TPU_COUNTS
        ] + [f"{openmp_8:.2f}x"]
        rows.append(tuple(row))
    report(
        format_table(
            ["app", "1 TPU", "2 TPUs", "4 TPUs", "8 TPUs", "8 CPUs (OpenMP)"],
            rows,
            title="Fig. 8(a): speedup over one CPU core",
        )
    )

    avg8 = mean_speedup(records_by_tpus[8])
    report(
        comparison_table(
            "Fig. 8(a) summary",
            [
                ("8-TPU average speedup", 13.86, avg8),
                ("8-core OpenMP speedup", 2.70, openmp_run(1.0, 8) and 1.0 / openmp_run(1.0, 8)),
            ],
        )
    )

    # 8 Edge TPUs beat the 8-core OpenMP CPU on average (the §9.3 story:
    # similar active power, far better throughput).
    assert avg8 > 2.70
    # Every app gains from 8 TPUs relative to 1.
    for app in apps:
        assert records_by_tpus[8][app].speedup >= records_by_tpus[1][app].speedup


def test_fig8b_scaling_curves(benchmark, report, records_by_tpus):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    apps = sorted(records_by_tpus[1])
    scaling = {
        app: [
            records_by_tpus[1][app].gptpu.wall_seconds
            / records_by_tpus[n][app].gptpu.wall_seconds
            for n in TPU_COUNTS
        ]
        for app in apps
    }
    report(
        format_table(
            ["app"] + [f"{n} TPU(s)" for n in TPU_COUNTS],
            [tuple([app] + [f"{s:.2f}x" for s in scaling[app]]) for app in apps],
            title="Fig. 8(b): per-app scaling relative to one Edge TPU",
        )
    )

    # Monotone non-degrading scaling for every app.
    for app in apps:
        series = scaling[app]
        assert all(b >= a * 0.95 for a, b in zip(series, series[1:])), app

    # LUD is among the worst scalers (the paper's stated exception; in
    # our reproduction Gaussian's host-side panel factorization also
    # serializes — see EXPERIMENTS.md).
    final = {app: scaling[app][-1] for app in apps}
    worst_two = sorted(final, key=final.get)[:2]
    assert "lud" in worst_two, final
    # LUD clearly below the linear scalers.
    assert final["lud"] < 0.55 * max(final.values())
    # The best scalers get substantial gains from 8 TPUs.
    assert max(final.values()) > 2.5
