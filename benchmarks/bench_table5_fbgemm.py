"""Table 5 — GPTPU-GEMM vs FBGEMM (8-bit CPU GEMM), §9.2.

Paper: on 1024×1024 matrices of positive integers with max values 2–128,

* GPTPU-GEMM is 1.22–1.28× faster than FBGEMM on every range,
* FBGEMM's RMSE is 0.00 up to max=16, then explodes (0.47 at 32, 0.97
  at 128) because it "does not handle overflow cases",
* GPTPU-GEMM's RMSE stays ≤ 0.01 (0.82 % at max 128 in the text).

Our FBGEMM model saturates a 16-bit accumulation path (DESIGN.md §1);
the overflow cliff lands between max=8 and max=32 depending on the
exact distribution — the paper observes it between 16 and 32.
"""

import numpy as np
import pytest

from repro.baselines.fbgemm import fbgemm_gemm, fbgemm_seconds
from repro.bench import format_table
from repro.apps.gemm_app import GemmApp
from repro.host.platform import Platform
from repro.metrics import rmse_percent
from repro.runtime.api import OpenCtpu

N = 1024
MAX_VALUES = [2, 4, 8, 16, 32, 64, 128]

#: Paper Table 5 rows for comparison.
PAPER_SPEEDUP = {2: 1.26, 4: 1.27, 8: 1.28, 16: 1.22, 32: 1.28, 64: 1.27, 128: 1.28}
PAPER_FBGEMM_RMSE = {2: 0.0, 4: 0.0, 8: 0.0, 16: 0.0, 32: 0.47, 64: 0.87, 128: 0.97}
PAPER_TPU_RMSE = {2: 0.0, 4: 0.0, 8: 0.0, 16: 0.0, 32: 0.0, 64: 0.0, 128: 0.01}


def _one_range(max_value: int, seed: int = 3):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, max_value + 1, (N, N)).astype(np.float64)
    b = rng.integers(0, max_value + 1, (N, N)).astype(np.float64)
    exact = a @ b

    fb = fbgemm_gemm(a, b)
    fb_seconds = fbgemm_seconds(N, N, N)

    platform = Platform.with_tpus(1)
    ctx = OpenCtpu(platform)
    gptpu = GemmApp(method="conv2d").run_gptpu({"a": a, "b": b}, ctx)

    return {
        "speedup": fb_seconds / gptpu.wall_seconds,
        # Paper reports RMSE as a 0-1 fraction here; convert from percent.
        "fb_rmse": rmse_percent(fb, exact) / 100.0,
        "tpu_rmse": rmse_percent(gptpu.value, exact) / 100.0,
    }


@pytest.fixture(scope="module")
def rows():
    return {m: _one_range(m) for m in MAX_VALUES}


def test_table5_speedup_and_rmse(benchmark, report, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    report(
        format_table(
            [
                "range",
                "speedup (meas)",
                "speedup (paper)",
                "FBGEMM RMSE (meas)",
                "FBGEMM RMSE (paper)",
                "TPU RMSE (meas)",
                "TPU RMSE (paper)",
            ],
            [
                (
                    f"0-{m}",
                    f"{rows[m]['speedup']:.2f}",
                    f"{PAPER_SPEEDUP[m]:.2f}",
                    f"{rows[m]['fb_rmse']:.2f}",
                    f"{PAPER_FBGEMM_RMSE[m]:.2f}",
                    f"{rows[m]['tpu_rmse']:.2f}",
                    f"{PAPER_TPU_RMSE[m]:.2f}",
                )
                for m in MAX_VALUES
            ],
            title="Table 5: GPTPU-GEMM vs FBGEMM (1024x1024 positive integers)",
        )
    )

    # GPTPU-GEMM wins on every range, in the paper's 1.2-1.3x band.
    for m in MAX_VALUES:
        assert 1.0 < rows[m]["speedup"] < 1.6, m

    # FBGEMM: clean below the overflow cliff, catastrophic above it.
    assert rows[2]["fb_rmse"] < 0.01
    assert rows[4]["fb_rmse"] < 0.01
    assert rows[128]["fb_rmse"] > 0.5
    fb_series = [rows[m]["fb_rmse"] for m in MAX_VALUES]
    assert fb_series == sorted(fb_series)  # degrades monotonically

    # GPTPU: sub-percent everywhere, regardless of range.
    for m in MAX_VALUES:
        assert rows[m]["tpu_rmse"] < 0.01, m

    # The crossover story: beyond the cliff FBGEMM is orders of
    # magnitude less accurate than GPTPU at comparable speed.
    assert rows[64]["fb_rmse"] > 20 * rows[64]["tpu_rmse"]
