"""Multi-TPU GEMM segmentation benchmark: one 8192^2 GEMM, 8 devices.

Submits the flagship 8192^2 ``tpu_gemm`` to the serving layer twice:

* **baseline** — a single-TPU pool with segmentation off: every
  dispatch group serializes through one device, so the modeled device
  time is the full sum of group service seconds;
* **sharded**  — the 8-TPU pool with ``shard="auto"``: the planner
  splits the group list into per-device segments using the
  interconnect-aware cost model, the pool executes them concurrently,
  and the merge step reassembles the partial products.

The headline number is ``modeled_speedup``: the baseline's serialized
device seconds over the sharded run's critical path (the busiest
device's seconds — devices run concurrently, so the makespan is the
max, not the sum).  The acceptance criteria (ISSUE 8) are that the
sharded run genuinely dispatches to **all 8 devices** (every device
reports busy seconds and executed groups) and that the measured
speedup clears a conservative floor.

Delivered bytes from both runs are compared bit-for-bit: segmentation
must change *where* groups run, never *what* is delivered.

Results land in ``BENCH_multi_tpu.json`` at the repo root.

Run with::

    PYTHONPATH=src python benchmarks/bench_multi_tpu.py
    PYTHONPATH=src python -m pytest benchmarks/bench_multi_tpu.py -m slow
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.edgetpu.isa import Opcode
from repro.host.platform import Platform
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.serve.server import ServeConfig, TpuServer

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_multi_tpu.json"

GEMM_N = 8192
POOL_TPUS = 8
#: Conservative floor for an 8-way split: remainder rows, transfer cost
#: and ragged segment boundaries eat into the ideal 8x.
SPEEDUP_FLOOR = 4.0


def _gemm_request(a: np.ndarray, b: np.ndarray) -> OperationRequest:
    return OperationRequest(
        task_id=0,
        opcode=Opcode.CONV2D,
        inputs=(a, b),
        quant=QuantMode.SCALE,
        attrs={"gemm": True},
        input_name="bench-multi-tpu",
    )


def _serve_once(tpus: int, shard: str, a: np.ndarray, b: np.ndarray) -> Dict:
    """Submit one GEMM to a fresh pool; return result + metrics."""
    server = TpuServer(
        Platform(SystemConfig().with_tpus(tpus)),
        ServeConfig(time_scale=0.0, shard=shard),
    )

    async def run() -> np.ndarray:
        async with server:
            out = await server.submit(_gemm_request(a, b))
            await server.drain()
            return out

    start = time.perf_counter()
    result = asyncio.run(run())
    wall = time.perf_counter() - start
    snap = server.snapshot()
    busy = {
        name: entry["busy_seconds"] for name, entry in snap["devices"].items()
    }
    groups = {
        name: entry["groups"] for name, entry in snap["devices"].items()
    }
    return {
        "result": result,
        "wall_seconds": wall,
        "busy_seconds": busy,
        "groups": groups,
        "sharding": snap["sharding"],
        "outcomes": snap["outcomes"],
    }


def run_benchmark() -> Dict:
    rng = np.random.default_rng(GEMM_N)
    a = rng.normal(size=(GEMM_N, GEMM_N))
    b = rng.normal(size=(GEMM_N, GEMM_N))

    baseline = _serve_once(1, "off", a, b)
    sharded = _serve_once(POOL_TPUS, "auto", a, b)

    bit_identical = bool(
        baseline["result"].tobytes() == sharded["result"].tobytes()
    )
    # One device serializes every group; the sharded pool's makespan is
    # its busiest device (segments run concurrently).
    serialized = sum(baseline["busy_seconds"].values())
    critical_path = max(sharded["busy_seconds"].values())
    modeled_speedup = serialized / critical_path
    return {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metric": (
            "modeled device seconds; speedup = single-device serialized "
            "time / busiest sharded device (the concurrent makespan)"
        ),
        "gemm_n": GEMM_N,
        "pool_tpus": POOL_TPUS,
        "baseline": {
            "device_seconds": round(serialized, 6),
            "groups": sum(baseline["groups"].values()),
            "wall_seconds": round(baseline["wall_seconds"], 3),
        },
        "sharded": {
            "critical_path_seconds": round(critical_path, 6),
            "busy_seconds": {
                k: round(v, 6) for k, v in sorted(sharded["busy_seconds"].items())
            },
            "groups_by_device": dict(sorted(sharded["groups"].items())),
            "plans": sharded["sharding"]["plans"],
            "segments": sharded["sharding"]["segments"],
            "migrations": sharded["sharding"]["migrations"],
            "wall_seconds": round(sharded["wall_seconds"], 3),
        },
        "modeled_speedup": round(modeled_speedup, 2),
        "bit_identical": bit_identical,
    }


def write_results(results: Dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


@pytest.mark.slow
def test_multi_tpu_bench(report):
    results = run_benchmark()
    write_results(results)
    report(json.dumps(results, indent=2))
    assert results["bit_identical"], "sharded result differs from solo"
    sharded = results["sharded"]
    assert sharded["plans"] >= 1
    assert sharded["segments"] == POOL_TPUS
    # Acceptance (ISSUE 8): the 8192^2 GEMM dispatches to ALL 8 devices.
    assert len(sharded["busy_seconds"]) == POOL_TPUS
    assert all(v > 0.0 for v in sharded["busy_seconds"].values())
    assert all(v > 0 for v in sharded["groups_by_device"].values())
    assert results["modeled_speedup"] >= SPEEDUP_FLOOR


if __name__ == "__main__":
    out = run_benchmark()
    write_results(out)
    print(json.dumps(out, indent=2))
    print(f"\nwrote {RESULT_PATH}")
