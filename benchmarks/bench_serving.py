"""Serving-layer load test — multi-tenant, one TPU dying mid-run.

The paper motivates GPTPU as shared infrastructure: "allow concurrent
GPTPU task execution" (§1) over the 8-TPU prototype (§6.1).  This
benchmark drives :mod:`repro.serve` the way a service would be driven:
six tenants issue GEMMs concurrently against a shared weight matrix
while one of the eight simulated Edge TPUs fails permanently mid-run.

Asserted invariants (the serving layer's contract):

* **zero lost / zero duplicated** — every admitted request's future
  settles exactly once; ``outcomes.lost == 0``;
* **fault tolerance** — all surviving requests complete even though one
  device dies (retry/requeue onto healthy TPUs, circuit breaker);
* **bit-identity** — every delivered result equals the solo lowering of
  the same request, coalesced or not, retried or not.

Results land in ``BENCH_serving.json`` at the repo root so CI and
EXPERIMENTS.md can cite p50/p99 latency and retry counts.  The run
executes under an enabled span tracer and also emits
``BENCH_serving_trace.json`` — a schema-validated Chrome trace of the
same run (load it at https://ui.perfetto.dev), the serving benchmark's
trace artifact for CI.
"""

import json
import pathlib

import pytest

from repro import telemetry
from repro.bench import format_table
from repro.serve import LoadgenSpec, run_loadgen

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"
TRACE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving_trace.json"

SPEC = LoadgenSpec(
    tpus=8,
    tenants=6,
    requests_per_tenant=8,
    size=128,
    seed=7,
    fail_after_instructions=40,  # dies mid-run, after serving some groups
    fail_device=3,
    time_scale=0.0,  # free-run: modeled service time, real concurrency
)

N_REQUESTS = SPEC.tenants * SPEC.requests_per_tenant


def test_serving_under_device_failure(benchmark, report):
    tracer = telemetry.SpanTracer(enabled=True)

    def traced_run():
        previous = telemetry.set_tracer(tracer)
        try:
            return run_loadgen(SPEC)
        finally:
            telemetry.set_tracer(previous)

    result = benchmark.pedantic(traced_run, rounds=1, iterations=1)
    snapshot = result.snapshot
    outcomes = snapshot["outcomes"]
    latency = snapshot["latency"]

    payload = dict(snapshot)
    payload["loadgen"] = {
        "wall_seconds": result.wall_seconds,
        "mismatches": result.mismatches,
        "delivered_by_tenant": result.delivered_by_tenant,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    telemetry.save_chrome_trace(tracer, str(TRACE_PATH))
    assert telemetry.validate_chrome_trace(str(TRACE_PATH)) == []

    failed_dev = f"tpu{SPEC.fail_device}"
    report(
        format_table(
            ["metric", "value"],
            [
                ("tenants x requests", f"{SPEC.tenants} x {SPEC.requests_per_tenant}"),
                ("TPUs (1 failing mid-run)", str(SPEC.tpus)),
                ("submitted", str(outcomes["submitted"])),
                ("completed", str(outcomes["completed"])),
                ("lost", str(outcomes["lost"])),
                ("result mismatches vs solo", str(result.mismatches)),
                ("p50 latency", f"{latency['p50_seconds'] * 1e3:.2f} ms"),
                ("p99 latency", f"{latency['p99_seconds'] * 1e3:.2f} ms"),
                ("device failures observed", str(snapshot["device_failures"])),
                ("group retries", str(snapshot["retries"])),
                ("coalesced requests", str(snapshot["coalescing"]["requests_coalesced"])),
                ("plan-cache hit rate", f"{snapshot['plan_cache']['hit_rate']:.1%}"),
                ("plan binds (warm requests)", str(snapshot["plan_cache"]["binds"])),
                (f"groups retired on {failed_dev}",
                 str(snapshot["devices"].get(failed_dev, {}).get("groups", 0))),
                ("healthy TPUs at end",
                 f"{snapshot['platform']['healthy']}/{snapshot['platform']['tpus']}"),
            ],
            title="Serving under a mid-run device failure (BENCH_serving.json):",
        )
    )

    # Zero lost / zero duplicated: every future settled exactly once.
    assert outcomes["lost"] == 0
    # Fault tolerance: the injected permanent failure surfaced ...
    assert snapshot["device_failures"] >= 1
    assert snapshot["retries"] >= 1
    assert snapshot["platform"]["healthy"] == SPEC.tpus - 1
    # ... yet every request still completed on the healthy devices.
    assert outcomes["completed"] == N_REQUESTS
    assert outcomes["failed"] == 0 and outcomes["timeouts"] == 0
    # Bit-identity: delivered results match solo lowering exactly.
    assert result.mismatches == 0
    # AOT plan cache: a steady-shape workload (every request the same
    # GEMM signature) must lower once and replay from then on.
    plan = snapshot["plan_cache"]
    assert plan["hit_rate"] >= 0.9
    assert plan["binds"] > 0 and plan["entries"] >= 1
    # The latency summary is well-formed (p50 <= p99 <= max).
    assert 0 < latency["p50_seconds"] <= latency["p99_seconds"] <= latency["max_seconds"]
    # Work actually spread across the surviving devices.
    active = [d for d, v in snapshot["devices"].items() if v["groups"] > 0]
    assert len(active) >= SPEC.tpus - 1
    # The trace's modeled device time reconciles with the metrics: the
    # span layer and busy_by_device observed the same successes.
    for name, seconds in tracer.device_seconds_by_track(cat="device").items():
        assert seconds == pytest.approx(
            snapshot["devices"][name]["busy_seconds"], rel=1e-9
        )
