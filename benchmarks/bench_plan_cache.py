"""AOT compiled-plan cache benchmark: lower once, execute many.

Measures the host wall-clock the plan cache (:mod:`repro.plan`) removes
from the warm path of a 2048^2 ``tpu_gemm``:

* ``fresh_lower_seconds``    — full ``Tensorizer.lower`` with no cache,
  the cost every request pays without AOT plans;
* ``cold_capture_seconds``   — the first lower with a cache attached
  (lowering plus plan capture — the one-time price);
* ``warm_lower_seconds``     — a warm lower end-to-end.  This still
  includes the modeled device math (the slab products that run on the
  Edge TPU on real hardware), so it is *not* the host-work number;
* ``warm_bind_seconds``      — the ``plan_bind`` span: the host work a
  warm request actually performs (input range scan, per-chunk quant
  params, quantizing A, binding instruction templates).  Everything
  else was captured once.

The acceptance criterion (ISSUE 6) is ``host_speedup =
fresh_lower_seconds / warm_bind_seconds >= 5``: replaying a plan must
cut per-request host wall-clock at least 5x versus lowering fresh.
Warm results are asserted bit-identical to the plan-free lowering.

Results land in ``BENCH_plan_cache.json`` at the repo root; see
``docs/performance.md``.

Run with::

    PYTHONPATH=src python benchmarks/bench_plan_cache.py
    PYTHONPATH=src python -m pytest benchmarks/bench_plan_cache.py -m slow
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.edgetpu.isa import Opcode
from repro.plan.cache import PlanCache
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.runtime.tensorizer import Tensorizer, TensorizerOptions
from repro.telemetry.tracer import SpanTracer

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_plan_cache.json"

GEMM_SIZES = (512, 1024, 2048)
WARM_REPS = 5


def _gemm_request(a: np.ndarray, b: np.ndarray) -> OperationRequest:
    """The request ``tpu_gemm(method="conv2d")`` hands the Tensorizer."""
    return OperationRequest(
        task_id=0,
        opcode=Opcode.CONV2D,
        inputs=(a, b),
        quant=QuantMode.SCALE,
        attrs={"gemm": True},
        input_name="bench",
    )


def time_plan_paths(n: int) -> Dict:
    """Fresh / cold-capture / warm timings for one n^2 GEMM shape."""
    rng = np.random.default_rng(n)
    a = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))

    # Fresh baseline: no plan cache, every request lowers from scratch.
    fresh_tz = Tensorizer(options=TensorizerOptions(vectorized=True))
    fresh = float("inf")
    for _ in range(3):
        request = _gemm_request(a.copy(), b)
        start = time.perf_counter()
        fresh_result = fresh_tz.lower(request).result
        fresh = min(fresh, time.perf_counter() - start)

    # Plan-cached path: one cold capture, then warm replays.  The
    # tracer's plan_bind span isolates the per-request host work; it
    # stays disabled for the cold capture so fresh and cold timings are
    # both untraced and comparable.
    tracer = SpanTracer()
    cache = PlanCache()
    tz = Tensorizer(
        options=TensorizerOptions(vectorized=True),
        tracer=tracer,
        plan_cache=cache,
    )
    start = time.perf_counter()
    tz.lower(_gemm_request(a.copy(), b))
    cold = time.perf_counter() - start
    tracer.enable()

    warm = float("inf")
    bind = float("inf")
    warm_result = None
    for _ in range(WARM_REPS):
        mark = len(tracer.spans)
        request = _gemm_request(a.copy(), b)
        start = time.perf_counter()
        warm_result = tz.lower(request).result
        warm = min(warm, time.perf_counter() - start)
        bind_spans = [s for s in tracer.spans[mark:] if s.name == "plan_bind"]
        assert bind_spans, "warm lower emitted no plan_bind span"
        bind = min(bind, sum(s.duration for s in bind_spans))

    bit_identical = bool(np.array_equal(fresh_result, warm_result))
    return {
        "fresh_lower_seconds": round(fresh, 4),
        "cold_capture_seconds": round(cold, 4),
        "warm_lower_seconds": round(warm, 4),
        "warm_bind_seconds": round(bind, 5),
        "host_speedup": round(fresh / bind, 2),
        "plan_cache": cache.counters(),
        "bit_identical": bit_identical,
    }


def run_benchmark() -> Dict:
    gemm = {str(n): time_plan_paths(n) for n in GEMM_SIZES}
    return {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metric": (
            "host wall-clock seconds; warm_bind_seconds is the plan_bind "
            "span (per-request host work on a cache hit)"
        ),
        "gemm": gemm,
        "criterion_host_speedup_2048": gemm["2048"]["host_speedup"],
    }


def write_results(results: Dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


@pytest.mark.slow
def test_plan_cache_bench(report):
    results = run_benchmark()
    write_results(results)
    report(json.dumps(results, indent=2))
    for n, row in results["gemm"].items():
        assert row["bit_identical"], f"{n}: warm replay is not bit-identical"
    # Acceptance floor (ISSUE 6): warm-path host wall-clock must be at
    # least 5x lower than fresh lowering on the flagship 2048 GEMM.
    assert results["criterion_host_speedup_2048"] >= 5.0


if __name__ == "__main__":
    out = run_benchmark()
    write_results(out)
    print(json.dumps(out, indent=2))
    print(f"\nwrote {RESULT_PATH}")
