"""Fig. 6 — GEMM speedup over OpenBLAS: FullyConnected vs conv2D (§7.1).

Paper series (speedup over one CPU core running OpenBLAS):

* conv2D:          1.48× (1K), 1.90× (2K), 2.06× (4K)
* FullyConnected:  < 1× everywhere; §7.1.3 reports the conv2D algorithm
  beating the FullyConnected one by ~43× at 4K.

We sweep 512–2048 (4K float64 functional execution is minutes of real
time; DESIGN.md §5) and check the same shape: conv2D above 1× and
rising with size, FullyConnected far below 1×, conv2D ≫ FullyConnected.
"""

import pytest

from repro.baselines.cpu_blas import blas_gemm
from repro.bench import comparison_table, format_table
from repro.apps.gemm_app import GemmApp
from repro.host.platform import Platform
from repro.metrics import rmse_percent
from repro.runtime.api import OpenCtpu

#: Paper's conv2D speedups, for the sizes we share.
PAPER_CONV2D = {1024: 1.48, 2048: 1.90, 4096: 2.06}

SIZES = (512, 1024, 2048)


def _run_method(method: str, n: int, seed: int = 1):
    app = GemmApp(method=method)
    inputs = app.generate(seed=seed, n=n)
    platform = Platform.with_tpus(1)
    ctx = OpenCtpu(platform)
    cpu = blas_gemm(inputs["a"], inputs["b"], platform.cpu)
    gptpu = app.run_gptpu(inputs, ctx)
    return cpu, gptpu


def test_fig6_gemm_speedups(benchmark, report):
    def run():
        rows = {}
        for n in SIZES:
            cpu, conv = _run_method("conv2d", n)
            _, fc = _run_method("fc", n)
            rows[n] = {
                "cpu_seconds": cpu.seconds,
                "conv_speedup": cpu.seconds / conv.wall_seconds,
                "fc_speedup": cpu.seconds / fc.wall_seconds,
                "conv_rmse": rmse_percent(conv.value, cpu.value),
                "fc_rmse": rmse_percent(fc.value, cpu.value),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        format_table(
            ["size", "conv2D speedup", "FullyConnected speedup", "conv2D/FC ratio", "conv2D RMSE%"],
            [
                (
                    f"{n}x{n}",
                    f"{r['conv_speedup']:.2f}x",
                    f"{r['fc_speedup']:.3f}x",
                    f"{r['conv_speedup'] / r['fc_speedup']:.0f}x",
                    f"{r['conv_rmse']:.2f}",
                )
                for n, r in rows.items()
            ],
            title="Fig. 6: GEMM implementations vs OpenBLAS CPU baseline",
        )
    )
    report(
        comparison_table(
            "Fig. 6 conv2D speedup vs paper",
            [
                (f"{n}x{n} conv2D", PAPER_CONV2D.get(n), rows[n]["conv_speedup"])
                for n in SIZES
            ],
        )
    )

    # Shape assertions (who wins, by roughly what factor):
    # conv2D beats the CPU from 1K up and improves with size.
    assert rows[1024]["conv_speedup"] > 1.0
    assert rows[2048]["conv_speedup"] > rows[1024]["conv_speedup"]
    assert rows[1024]["conv_speedup"] == pytest.approx(PAPER_CONV2D[1024], rel=0.35)
    # FullyConnected never beats the CPU (§7.1.3).
    for n in SIZES:
        assert rows[n]["fc_speedup"] < 1.0
    # conv2D beats FullyConnected by tens of x at the largest size (§7.1.3: 43x).
    ratio = rows[2048]["conv_speedup"] / rows[2048]["fc_speedup"]
    assert 20 < ratio < 90
    # Results stay sub-percent accurate.
    for n in SIZES:
        assert rows[n]["conv_rmse"] < 1.0
