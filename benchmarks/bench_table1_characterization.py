"""Table 1 — OPS and RPS of every Edge TPU instruction (paper §3.2).

Runs the paper's two-phase measurement loop (Eqs. 1–3) against the
simulated device and compares every row with the published Table 1.
Also reproduces the §3.2 data-exchange measurements (1 MB ≈ 6 ms,
8 MB ≈ 48 ms).
"""

import pytest

from repro.bench import characterize_all, format_table, measure_data_exchange


def test_table1_ops_and_rps(benchmark, report):
    rows = benchmark.pedantic(characterize_all, rounds=1, iterations=1)

    report(
        format_table(
            ["operator", "OPS (meas)", "OPS (paper)", "RPS (meas)", "RPS (paper)", "description"],
            [
                (
                    r.opname,
                    f"{r.ops:.2f}",
                    f"{r.paper_ops:.2f}",
                    f"{r.rps:.2f}",
                    f"{r.paper_rps:.2f}",
                    r.description,
                )
                for r in rows
            ],
            title="Table 1: Edge TPU instruction characterization (Eqs. 1-2)",
        )
    )

    assert len(rows) == 11
    for row in rows:
        assert row.ops_error_percent < 1.0, row.opname
        assert row.rps_error_percent < 1.0, row.opname

    # Qualitative observations the paper draws from Table 1:
    by_name = {r.opname: r for r in rows}
    # (1) conv2D's RPS dwarfs FullyConnected's ("25x").
    ratio = by_name["conv2D"].rps / by_name["FullyConnected"].rps
    assert 20 < ratio < 30
    # (2) OPS and RPS are not strongly correlated (sub vs FullyConnected).
    assert by_name["sub"].ops < by_name["FullyConnected"].ops
    assert by_name["sub"].rps > by_name["FullyConnected"].rps


def test_data_exchange_rate(benchmark, report):
    points = benchmark.pedantic(measure_data_exchange, rounds=1, iterations=1)
    mb = 1024 * 1024
    report(
        format_table(
            ["bytes", "seconds"],
            [(size, f"{sec * 1e3:.2f} ms") for size, sec in points],
            title="§3.2 data exchange: latency vs transfer size",
        )
    )
    by_size = dict(points)
    assert by_size[mb] == pytest.approx(6e-3, rel=0.05)
    assert by_size[8 * mb] == pytest.approx(48e-3, rel=0.05)
    # Rate is flat: 8x the data takes ~8x the time.
    assert by_size[8 * mb] / by_size[mb] == pytest.approx(8.0, rel=0.05)
