"""Sustained open-loop serving — SLO tiers, shedding, and the §8 energy frontier.

ROADMAP item 1's north star is "sustained throughput for millions of
users"; the paper's §8 frames the pool's value in energy per unit of
work, not burst speed.  This benchmark drives :mod:`repro.serve` the way
a long-lived service is driven: a seeded **open-loop** Poisson arrival
process (arrivals fire on schedule whether or not earlier requests
finished, so queues genuinely build) over a heavy-tailed lognormal
request-shape mix, 10⁵ requests compressing ~40 model-minutes into one
run — with fail-stop *and* silent-data-corruption churn armed underneath
the whole time.

Phases, each asserted and archived in ``BENCH_sustained.json``:

* **sustained** — 10⁵ requests at a sustainable rate on the asyncio
  server with a TPU dying mid-run and an SDC burst caught by ABFT:
  zero lost, exactly-once from the delivery event log, gold p99/p99.9
  inside its SLO budget, per-tier joules-per-request table.
* **replica** — the same spec re-run from the seed must reproduce the
  sustained phase's digest **bit for bit** (schedule fingerprint +
  per-arrival outcome codes).
* **overload** — 4x the sustainable rate: the admission governor sheds
  strictly lowest-tier-first (bronze before silver, gold never) with
  hysteresis, and the run still holds zero-lost/exactly-once.
* **multiprocess** — the same open-loop harness against the
  ``--workers`` MP server with fail-stop churn: invariants hold across
  process boundaries (no bit-for-bit claim; its ordering is real).
* **energy frontier** — shardable GEMMs with deadline slack: the
  energy-aware planner converts headroom into fewer active devices,
  measurably cutting active joules per request versus the min-makespan
  baseline (§8.1's latency-for-energy trade).
"""

import dataclasses
import json
import pathlib

from repro.bench import format_table
from repro.serve import SustainedSpec, run_sustained

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sustained.json"

#: The flagship run: 10⁵ requests, both churn injectors armed, ABFT on.
SUSTAINED = SustainedSpec(
    requests=100_000,
    rate=60.0,
    seed=7,
    burst=8,
    ticks=4,
    fail_after_instructions=5_000,
    fail_device=1,
    sdc_after_instructions=9_000,
    sdc_failures=4,
    sdc_device=2,
    integrity="abft",
)

OVERLOAD = dataclasses.replace(
    SUSTAINED, requests=10_000, rate=400.0, burst=32, ticks=1
)

MP = dataclasses.replace(
    SUSTAINED,
    requests=4_000,
    workers=2,
    tpus=4,
    rate=30.0,
    burst=4,
    ticks=2,
    tick_seconds=0.002,
    sdc_after_instructions=0,
    integrity="off",
)

ENERGY_BASE = SustainedSpec(
    requests=600,
    rate=20.0,
    seed=7,
    burst=8,
    ticks=6,
    size_median=192.0,
    gemm_chunks=8,
    shard="auto",
)


def _phase_payload(result):
    return {
        "digest": result.digest,
        "schedule_digest": result.schedule_digest,
        "outcomes": result.outcomes,
        "tiers": result.tier_table,
        "energy": result.energy,
        "violations": result.violations,
        "overload": result.snapshot.get("overload"),
        "latency": result.snapshot["latency"],
        "model_seconds": result.model_seconds,
        "wall_seconds": result.wall_seconds,
    }


def _tier_rows(result):
    rows = []
    for name in ("gold", "silver", "bronze"):
        row = result.tier_table[name]
        p99 = row["p99_seconds"]
        jpr = row["joules_per_request"]
        rows.append((
            f"  {name}",
            (f"ok {row['completed']}/{row['submitted']}, shed {row['shed']}"
             + (f", p99 {p99 * 1e3:.1f} ms" if p99 is not None else "")
             + (f", {jpr:.3f} J/req" if jpr is not None else "")),
        ))
    return rows


def test_sustained_open_loop_serving(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_sustained(SUSTAINED), rounds=1, iterations=1
    )
    replica = run_sustained(SUSTAINED)
    overload = run_sustained(OVERLOAD)
    mp = run_sustained(MP)
    frugal = run_sustained(
        dataclasses.replace(ENERGY_BASE, energy_aware=True)
    )
    hasty = run_sustained(ENERGY_BASE)

    payload = {
        "spec": dataclasses.asdict(SUSTAINED),
        "sustained": _phase_payload(result),
        "replica_digest": replica.digest,
        "overload": _phase_payload(overload),
        "multiprocess": _phase_payload(mp),
        "energy_frontier": {
            "min_makespan": _phase_payload(hasty),
            "energy_aware": _phase_payload(frugal),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    outcomes = result.snapshot["outcomes"]
    governor = overload.snapshot["overload"]
    active_cut = 1.0 - (
        frugal.energy["active_joules"] / hasty.energy["active_joules"]
    )
    report(format_table(
        ["metric", "value"],
        [
            ("open-loop requests", f"{SUSTAINED.requests} @ {SUSTAINED.rate}/s"),
            ("model time compressed", f"{result.model_seconds / 60:.1f} min"),
            ("wall time", f"{result.wall_seconds:.1f} s"),
            ("outcome codes", str(result.outcomes)),
            ("lost / duplicated", f"{outcomes['lost']} / 0 (event log)"),
            ("digest (replica match)",
             f"{result.digest[:16]}… ({result.digest == replica.digest})"),
            *_tier_rows(result),
            ("overload phase", f"{OVERLOAD.requests} @ {OVERLOAD.rate}/s"),
            ("  sheds g/s/b",
             f"{overload.tier_table['gold']['shed']}"
             f"/{overload.tier_table['silver']['shed']}"
             f"/{overload.tier_table['bronze']['shed']}"),
            ("  governor", f"level {governor['level']}, "
             f"{governor['escalations']} escalations"),
            ("MP phase (--workers 2)", str(mp.outcomes)),
            ("energy-aware active-joule cut", f"{active_cut:.1%}"),
            ("energy plans chosen", str(frugal.energy["energy_plans"])),
        ],
        title="Sustained open-loop serving (BENCH_sustained.json):",
    ))

    # The flagship run is invariant-clean under churn: zero lost,
    # exactly-once from the event log, sheds orderly, gold inside its
    # p99/p99.9 budgets (all folded into the violations audit).
    assert result.violations == []
    assert outcomes["lost"] == 0
    assert result.snapshot["device_failures"] >= 1  # fail-stop surfaced
    assert result.snapshot["integrity"]["sdc_detected"] >= 1  # SDC caught
    # Bit-for-bit reproducible from the seed.
    assert replica.digest == result.digest
    assert replica.outcomes == result.outcomes
    # Every tier has a joules-per-request figure.
    for row in result.tier_table.values():
        assert row["joules_per_request"] is not None

    # Overload: sheds strictly lowest-tier-first, gold untouched.
    assert overload.violations == []
    assert overload.tier_table["bronze"]["shed"] > 0
    assert overload.tier_table["gold"]["shed"] == 0
    assert governor["escalations"] >= 1

    # MP server: same invariants across process boundaries.
    assert mp.violations == []
    assert mp.snapshot["outcomes"]["lost"] == 0

    # Energy frontier: slack converts to measurably fewer active joules.
    assert frugal.violations == [] and hasty.violations == []
    assert frugal.energy["energy_plans"] > 0
    assert frugal.energy["active_joules"] < hasty.energy["active_joules"]
