"""Fig. 7 — per-application speedup, energy, and EDP, 1 Edge TPU vs 1 CPU core.

Paper headlines (§9.1):

* average speedup 2.46× (2.19× excluding Backprop),
* Backprop best at 4.08×, HotSpot3D worst at 1.14×,
* GPTPU uses ~5 % of the CPU's active energy; overall energy savings
  ≈45 %, energy-delay-product reduction ≈67 %.

Inputs are scaled down from Table 3 (DESIGN.md §5); the per-app
CPU-baseline rates are calibrated against this figure (DESIGN.md §4),
so the assertion value here is the *joint* shape: ranking, energy
decomposition, and the relative spread across applications.
"""

import numpy as np
import pytest

from repro.bench import comparison_table, format_table
from repro.bench.harness import mean_speedup, run_suite

#: Paper's published per-app values where stated; None where only the
#: figure bar is available.
PAPER_SPEEDUPS = {
    "backprop": 4.08,
    "blackscholes": None,
    "gaussian": None,
    "gemm": None,
    "hotspot3d": 1.14,
    "lud": None,
    "pagerank": None,
}

#: Scaled-up GEMM for this figure (closer to the paper's 16K regime).
FIG7_PARAMS = {"gemm": {"n": 2048}}


@pytest.fixture(scope="module")
def records():
    return run_suite(num_tpus=1, params_by_app=FIG7_PARAMS)


def test_fig7a_speedups(benchmark, report, records):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    report(
        format_table(
            ["app", "CPU 1-core (s)", "GPTPU 1-TPU (s)", "speedup", "paper"],
            [
                (
                    name,
                    f"{r.cpu_seconds:.3f}",
                    f"{r.gptpu.wall_seconds:.3f}",
                    f"{r.speedup:.2f}x",
                    f"{PAPER_SPEEDUPS[name]:.2f}x" if PAPER_SPEEDUPS[name] else "-",
                )
                for name, r in sorted(records.items())
            ],
            title="Fig. 7(a): application speedup, 1 Edge TPU vs 1 CPU core",
        )
    )
    avg = mean_speedup(records)
    no_bp = {k: v for k, v in records.items() if k != "backprop"}
    report(
        comparison_table(
            "Fig. 7(a) summary",
            [
                ("average speedup", 2.46, avg),
                ("average excl. Backprop", 2.19, mean_speedup(no_bp)),
                ("Backprop speedup", 4.08, records["backprop"].speedup),
                ("HotSpot3D speedup", 1.14, records["hotspot3d"].speedup),
            ],
        )
    )

    # Shape: every app ends up faster than the CPU core.
    for name, r in records.items():
        assert r.speedup > 1.0, name
    # Backprop is the best case, HotSpot3D the worst (§9.1).
    speeds = {name: r.speedup for name, r in records.items()}
    assert max(speeds, key=speeds.get) == "backprop"
    assert min(speeds, key=speeds.get) == "hotspot3d"
    assert speeds["backprop"] == pytest.approx(4.08, rel=0.15)
    assert speeds["hotspot3d"] == pytest.approx(1.14, rel=0.15)
    assert avg == pytest.approx(2.46, rel=0.20)


def test_fig7b_energy_and_edp(benchmark, report, records):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for name, r in sorted(records.items()):
        active_ratio = (
            r.gptpu.energy.active_joules / r.cpu_energy.active_joules
        )
        idle_ratio = r.gptpu.energy.idle_joules / r.cpu_energy.idle_joules
        rows.append(
            (
                name,
                f"{r.energy_ratio:.2f}",
                f"{active_ratio:.3f}",
                f"{idle_ratio:.2f}",
                f"{r.edp_ratio:.2f}",
            )
        )
    report(
        format_table(
            ["app", "energy ratio", "active ratio", "idle ratio", "EDP ratio"],
            rows,
            title="Fig. 7(b): GPTPU energy relative to the CPU baseline (lower is better)",
        )
    )

    mean_energy = float(np.mean([r.energy_ratio for r in records.values()]))
    mean_active = float(
        np.mean(
            [r.gptpu.energy.active_joules / r.cpu_energy.active_joules for r in records.values()]
        )
    )
    mean_idle = float(
        np.mean(
            [r.gptpu.energy.idle_joules / r.cpu_energy.idle_joules for r in records.values()]
        )
    )
    mean_edp = float(np.mean([r.edp_ratio for r in records.values()]))
    report(
        comparison_table(
            "Fig. 7(b) summary (paper §9.1)",
            [
                ("active-energy ratio", 0.05, mean_active),
                ("idle-energy ratio", 0.51, mean_idle),
                ("total-energy ratio", 0.55, mean_energy),
                ("EDP ratio", 0.33, mean_edp),
            ],
        )
    )

    # Shape: every app saves energy ("even the worst-performing GPTPU
    # benchmark still saves ... energy").
    for name, r in records.items():
        assert r.energy_ratio < 1.0, name
        assert r.edp_ratio < 1.0, name
    # Active energy is a tiny fraction of the CPU's (paper: 5%).
    assert mean_active < 0.25
    # Idle energy tracks the wall-time ratio (paper: 51%).
    assert mean_idle == pytest.approx(0.51, abs=0.15)
    # EDP improves more than energy alone (both latency and energy win).
    assert mean_edp < mean_energy
