"""Table 4 — MAPE and RMSE of every application across input value ranges.

The paper measures each application against its exact CPU baseline on
(a) the default dataset and (b) synthetic datasets whose values span
-2^7..2^7, -2^15..2^15, and -2^31..2^31, finding MAPE always < 1 %
(average 0.33 %) and RMSE at worst 0.98 %, *independent of the value
range* — the §6.2.2 scaling makes 8-bit precision range-invariant.

We scale each app's linear inputs by the requested range.  PageRank is
exempt from scaling (a link matrix is stochastic by definition — its
"range" is fixed; the paper's graphs have the same property).
"""

import numpy as np
import pytest

from repro.apps import all_applications
from repro.bench import comparison_table, format_table
from repro.host.platform import Platform
from repro.metrics import mape_percent, rmse_percent
from repro.runtime.api import OpenCtpu

#: Paper Table 4(a) MAPE / 4(b) RMSE on the default dataset, in percent.
PAPER_DEFAULT = {
    "backprop": (0.12, 0.14),
    "blackscholes": (0.18, 0.33),
    "gaussian": (0.00, 0.00),
    "gemm": (0.89, 0.98),
    "hotspot3d": (0.50, 0.64),
    "lud": (0.00, 0.00),
    "pagerank": (0.61, 0.41),
}

#: Modest problem sizes — Table 4 is about accuracy, not scale.
ACC_PARAMS = {
    "backprop": {"batch": 256, "n_in": 512, "n_hidden": 128, "n_out": 16},
    "blackscholes": {"n_options": 128 * 128},
    "gaussian": {"n": 384},
    "gemm": {"n": 384},
    "hotspot3d": {"n": 192, "layers": 2, "iterations": 3},
    "lud": {"n": 384},
    "pagerank": {"n": 512, "iterations": 10},
}

#: Which generated arrays may be linearly rescaled per app.  Backprop is
#: exempt like PageRank: rescaling the input of a fixed tanh network
#: saturates the activations in exact float math too, so the comparison
#: would measure saturation behaviour rather than quantization error.
SCALABLE = {
    "backprop": [],
    "blackscholes": ["spot", "strike"],
    "gaussian": ["a", "b"],
    "gemm": ["a", "b"],
    "hotspot3d": ["temps", "power"],
    "lud": ["a"],
    "pagerank": [],
}

RANGES = [("default", None), ("2^7", 2.0**7), ("2^15", 2.0**15), ("2^31", 2.0**31)]


def _run_accuracy(name: str, scale: float | None):
    app = all_applications()[name]
    inputs = app.generate(seed=11, **ACC_PARAMS[name])
    if scale is not None and SCALABLE[name]:
        peak = max(float(np.abs(inputs[k]).max()) for k in SCALABLE[name])
        factor = scale / peak
        for key in SCALABLE[name]:
            inputs[key] = inputs[key] * factor
    platform = Platform.with_tpus(1)
    ctx = OpenCtpu(platform)
    cpu_res = app.run_cpu(inputs, platform.cpu)
    gptpu_res = app.run_gptpu(inputs, ctx)
    return (
        mape_percent(gptpu_res.value, cpu_res.value),
        rmse_percent(gptpu_res.value, cpu_res.value),
    )


@pytest.fixture(scope="module")
def table():
    return {
        name: {label: _run_accuracy(name, scale) for label, scale in RANGES}
        for name in sorted(PAPER_DEFAULT)
    }


def test_table4_accuracy(benchmark, report, table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    for metric_idx, metric in ((0, "MAPE"), (1, "RMSE")):
        report(
            format_table(
                ["benchmark"] + [label for label, _ in RANGES] + ["paper (default)"],
                [
                    tuple(
                        [name]
                        + [f"{table[name][label][metric_idx]:.2f}%" for label, _ in RANGES]
                        + [f"{PAPER_DEFAULT[name][metric_idx]:.2f}%"]
                    )
                    for name in sorted(table)
                ],
                title=f"Table 4({'a' if metric == 'MAPE' else 'b'}): {metric} vs exact CPU results",
            )
        )

    # Shape assertions.  RMSE (range-normalized, the paper's headline
    # robustness metric) stays small everywhere; MAPE is entrywise
    # relative error and can inflate on outputs distributed around zero
    # (backprop predictions, see EXPERIMENTS.md), so it gets a looser
    # but still-small bound.
    for name, per_range in table.items():
        for label, (mape, rmse) in per_range.items():
            assert rmse < 1.5, (name, label, rmse)
            # Backprop's outputs are tanh-layer pre-activations centered
            # on zero, so entrywise relative error carries a long tail.
            assert mape < (12.0 if name == "backprop" else 8.0), (name, label, mape)

    # Range invariance: accuracy does not degrade with 2^31-scale inputs
    # (the paper's key §6.2.2 claim).
    for name, per_range in table.items():
        if not SCALABLE[name]:
            continue
        default_rmse = per_range["default"][1]
        huge_rmse = per_range["2^31"][1]
        assert huge_rmse < max(2.0 * default_rmse, 1.0), name

    # Average MAPE lands in the paper's sub-percent regime for the
    # matrix apps (gemm / gaussian / lud / hotspot / pagerank).
    core = ["gemm", "gaussian", "lud", "hotspot3d", "pagerank"]
    avg = np.mean([table[n]["default"][0] for n in core])
    assert avg < 1.0
