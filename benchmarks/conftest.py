"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark prints its comparison table (paper vs measured) and
archives it under ``benchmarks/results/`` so EXPERIMENTS.md can cite the
exact output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report(request):
    """Print a report block and archive it per-benchmark."""
    RESULTS_DIR.mkdir(exist_ok=True)
    chunks = []

    def _report(text: str) -> None:
        chunks.append(text)
        print("\n" + text)

    yield _report
    if chunks:
        out = RESULTS_DIR / f"{request.node.name}.txt"
        out.write_text("\n\n".join(chunks) + "\n")
