"""Ablations of the runtime design choices (DESIGN.md §3, last row).

* **Locality scheduling** (§6.1): disabling the same-input rule lets
  cached GEMM chunks migrate between devices and be re-transferred.
* **Fast model builder** (§6.2.3): falling back to the stock TFLite
  compile cost makes model creation dominate end to end — the paper's
  motivation for reverse-engineering the format.
* **Kernel batching** (§7.1.2 lowering): one kernel per conv2D
  instruction (the literal algorithm) pays the per-instruction issue
  floor K times; batching fills the 128² result tile.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.bench.harness import run_app
from repro.runtime.scheduler import SchedulePolicy
from repro.runtime.tensorizer import TensorizerOptions

GEMM_PARAMS = {"n": 512}


def test_locality_scheduling(benchmark, report):
    """A wide GEMM (several kernel batches sweep each cached row chunk)
    is where the same-input rule pays: without it, batches migrate
    between devices and every migration re-transfers the chunk."""
    from repro.host.platform import Platform
    from repro.ops.gemm import tpu_gemm
    from repro.runtime.api import OpenCtpu

    # Tall-skinny product: big row chunks (512 KB each), small kernels,
    # two kernel batches sweeping every chunk.
    rng = np.random.default_rng(2)
    a = rng.uniform(0, 4, (4096, 1024))
    b = rng.uniform(0, 4, (1024, 64))
    options = TensorizerOptions(min_gemm_chunks=8)

    def one(policy):
        platform = Platform.with_tpus(4)
        ctx = OpenCtpu(platform, options=options, policy=policy)
        tpu_gemm(ctx, a, b)
        rep = ctx.sync()
        return rep.timeline

    def run():
        return one(SchedulePolicy(locality=True)), one(SchedulePolicy(locality=False))

    with_loc, without = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["policy", "wall (s)", "bytes moved"],
            [
                ("locality (paper §6.1)", f"{with_loc.makespan:.4f}", with_loc.bytes_transferred),
                ("no locality", f"{without.makespan:.4f}", without.bytes_transferred),
            ],
            title="Ablation: §6.1 locality rule on a 4-TPU tall GEMM (4096x1024 @ 1024x64)",
        )
    )
    # The locality rule reduces data movement (cached chunks stay put).
    assert with_loc.bytes_transferred < without.bytes_transferred
    assert with_loc.makespan <= without.makespan * 1.05


def test_fast_model_builder(benchmark, report):
    def run():
        fast = run_app("gemm", params=GEMM_PARAMS,
                       options=TensorizerOptions(fast_model_builder=True))
        slow = run_app("gemm", params=GEMM_PARAMS,
                       options=TensorizerOptions(fast_model_builder=False))
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["model builder", "GEMM wall (s)", "speedup vs CPU"],
            [
                ("Tensorizer (1.8 ms/2K², §6.2.3)", f"{fast.gptpu.wall_seconds:.4f}",
                 f"{fast.speedup:.2f}x"),
                ("stock TFLite (2.7 s/2K², §3.3)", f"{slow.gptpu.wall_seconds:.4f}",
                 f"{slow.speedup:.3f}x"),
            ],
            title="Ablation: model-creation path, end-to-end 512² GEMM",
        )
    )
    # Without the fast builder the TPU path loses to the CPU outright —
    # the paper's entire motivation for §6.2.3.
    assert slow.speedup < 0.2
    assert fast.gptpu.wall_seconds < slow.gptpu.wall_seconds / 10


def test_kernel_batching(benchmark, report):
    def run():
        batched = run_app("gemm", params=GEMM_PARAMS,
                          options=TensorizerOptions(kernel_batching=True))
        single = run_app("gemm", params=GEMM_PARAMS,
                         options=TensorizerOptions(kernel_batching=False))
        return batched, single

    batched, single = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["lowering", "instructions", "wall (s)", "RMSE %"],
            [
                ("batched kernels (default)", batched.gptpu.instructions,
                 f"{batched.gptpu.wall_seconds:.4f}", f"{batched.rmse_percent:.2f}"),
                ("one kernel per conv2D (§7.1.2 literal)", single.gptpu.instructions,
                 f"{single.gptpu.wall_seconds:.4f}", f"{single.rmse_percent:.2f}"),
            ],
            title="Ablation: conv2D GEMM kernel batching",
        )
    )
    assert batched.gptpu.instructions < single.gptpu.instructions / 10
    assert batched.gptpu.wall_seconds < single.gptpu.wall_seconds
    # Accuracy unaffected by batching.
    assert batched.rmse_percent < 1.0 and single.rmse_percent < 1.0


def test_pipelining(benchmark, report):
    """§6.2.3's overlap, end to end: with double buffering off, every
    instruction pays its full transfer latency in series."""

    def run():
        on = run_app("gemm", params={"n": 1024},
                     policy=SchedulePolicy(pipelining=True))
        off = run_app("gemm", params={"n": 1024},
                      policy=SchedulePolicy(pipelining=False))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["executor", "GEMM wall (s)", "speedup vs CPU"],
            [
                ("pipelined (§6.2.3 overlap)", f"{on.gptpu.wall_seconds:.4f}",
                 f"{on.speedup:.2f}x"),
                ("transfer -> execute, serialized", f"{off.gptpu.wall_seconds:.4f}",
                 f"{off.speedup:.2f}x"),
            ],
            title="Ablation: transfer/execute overlap on a 1024² GEMM (1 TPU)",
        )
    )
    assert on.gptpu.wall_seconds < off.gptpu.wall_seconds
    # Results are identical either way — only the timeline changes.
    assert on.rmse_percent == pytest.approx(off.rmse_percent)


def test_quantization_rules(benchmark, report):
    """§6.2.2 ablation: measured Eq. 4 bounds vs literal Eqs. 5–8."""
    from repro.apps.gemm_app import GemmApp
    from repro.host.platform import Platform
    from repro.metrics import rmse_percent
    from repro.runtime.api import OpenCtpu
    from repro.runtime.opqueue import QuantMode

    def run():
        rows = []
        app = GemmApp()
        inputs = app.generate(seed=5, n=512)
        exact = inputs["a"] @ inputs["b"]
        for label, options, quant in (
            ("measured bounds, per-tile (default)",
             TensorizerOptions(scaling_rule="measured"), QuantMode.SCALE),
            ("Eq. 5 closed form",
             TensorizerOptions(scaling_rule="formula"), QuantMode.SCALE),
            ("measured bounds, global input scale",
             TensorizerOptions(scaling_rule="measured"), QuantMode.GLOBAL),
        ):
            ctx = OpenCtpu(Platform.with_tpus(1), options=options, quant=quant)
            result = app.run_gptpu(inputs, ctx)
            rows.append((label, rmse_percent(result.value, exact)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["scaling rule", "GEMM RMSE %"],
            [(label, f"{rmse:.3f}") for label, rmse in rows],
            title="Ablation: §6.2.2 output-scale selection (512² uniform GEMM)",
        )
    )
    by_label = dict(rows)
    default_rmse = by_label["measured bounds, per-tile (default)"]
    formula_rmse = by_label["Eq. 5 closed form"]
    assert default_rmse < 1.0
    # The closed-form worst case is strictly looser.
    assert formula_rmse >= default_rmse
