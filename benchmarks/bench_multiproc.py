"""Multi-process data-plane benchmark: host-lowering throughput scaling.

The GIL serializes host lowering inside one process no matter how many
simulated TPUs the pool holds; ``repro.mp`` escapes it by sharding the
Tensorizer + device pool across worker processes.  This benchmark
drives the same distinct-operand GEMM batch (plan cache off, so every
request pays its full lowering) through:

* **1 worker**  — all lowering serializes on one data-plane process;
* **4 workers** — the admission tier spreads requests least-loaded
  across four processes, each lowering concurrently.

The headline number is ``host_lowering_speedup``: the single worker's
lowering CPU seconds over the busiest of the four workers' (the
concurrent critical path).  Per-worker CPU comes from
``time.process_time()`` deltas between two snapshots, so parent-side
admission cost and worker spawn/import cost are excluded — and, unlike
wall clock, the measurement is honest on a CPU-starved container (this
box may have a single core, where concurrent processes timeslice and
wall time cannot improve; the recorded ``cpus`` and wall seconds keep
that visible).

A third run SIGKILLs the busiest worker mid-batch and gates the crash
contract: every request still completes bit-identically (requeued to a
live worker), delivered exactly once, zero lost, and every
shared-memory segment is unlinked afterwards.

Results land in ``BENCH_multiproc.json`` at the repo root.

Run with::

    PYTHONPATH=src python benchmarks/bench_multiproc.py
    PYTHONPATH=src python -m pytest benchmarks/bench_multiproc.py -m slow
"""

from __future__ import annotations

import asyncio
import glob
import json
import os
import pathlib
import signal
import time
from typing import Dict, List, Optional

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.edgetpu.isa import Opcode
from repro.host.platform import Platform
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.serve.server import ServeConfig, TpuServer

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_multiproc.json"

POOL_TPUS = 8
WORKERS = 4
REQUESTS = 48
GEMM_M, GEMM_K, GEMM_N = 256, 224, 192
#: Acceptance floor (ISSUE 9): >= 2.5x lowering throughput at 4 workers.
SPEEDUP_FLOOR = 2.5


def _requests(seed: int = 9) -> List[OperationRequest]:
    """Distinct operands per request: no coalescing, no plan reuse."""
    rng = np.random.default_rng(seed)
    return [
        OperationRequest(
            task_id=i + 1,
            opcode=Opcode.CONV2D,
            inputs=(
                rng.standard_normal((GEMM_M, GEMM_K)),
                rng.standard_normal((GEMM_K, GEMM_N)),
            ),
            quant=QuantMode.SCALE,
            attrs={"gemm": True},
            tenant=f"tenant{i % 4}",
        )
        for i in range(REQUESTS)
    ]


def _config() -> ServeConfig:
    return ServeConfig(
        time_scale=0.0, plan_cache=False, max_queue_depth=REQUESTS * 2
    )


def _shm_names() -> set:
    return {os.path.basename(p) for p in glob.glob("/dev/shm/psm_*")}


def _run_inprocess() -> Dict:
    """The single-process reference path (bit-identity baseline)."""
    server = TpuServer(Platform(SystemConfig().with_tpus(POOL_TPUS)), _config())

    async def run() -> List[np.ndarray]:
        async with server:
            futures = [server.submit_nowait(r) for r in _requests()]
            results = await asyncio.gather(*futures)
            await server.drain()
            return results

    start = time.perf_counter()
    results = asyncio.run(run())
    return {"results": results, "wall_seconds": time.perf_counter() - start}


def _run_mp(workers: int, kill_one: bool = False) -> Dict:
    from repro.mp import MpTpuServer

    server = MpTpuServer(
        Platform(SystemConfig().with_tpus(POOL_TPUS)), _config(), workers=workers
    )
    events: List[tuple] = []
    server.pool.observer = lambda event, sid, dev: events.append((event, sid))

    async def run() -> Dict:
        async with server:
            baseline = server.snapshot()["workers"]["host_seconds"]
            start = time.perf_counter()
            futures = [server.submit_nowait(r) for r in _requests()]
            killed: Optional[int] = None
            if kill_one:
                for _ in range(500):
                    await asyncio.sleep(0.01)
                    busy = max(
                        server._workers,
                        key=lambda w: w.inflight + len(w.pending),
                    )
                    if busy.alive and busy.inflight > 0:
                        killed = busy.pid
                        os.kill(busy.pid, signal.SIGKILL)
                        break
            results = await asyncio.gather(*futures)
            await server.drain()
            wall = time.perf_counter() - start
            snap = server.snapshot()
        lowering = {
            wid: snap["workers"]["host_seconds"][wid] - baseline.get(wid, 0.0)
            for wid in snap["workers"]["host_seconds"]
        }
        return {
            "results": results,
            "wall_seconds": wall,
            "lowering_seconds": lowering,
            "snapshot": snap,
            "killed_pid": killed,
        }

    out = asyncio.run(run())
    out["events"] = events
    return out


def run_benchmark() -> Dict:
    reference = _run_inprocess()
    solo = _run_mp(1)
    fan = _run_mp(WORKERS)
    kill = _run_mp(WORKERS, kill_one=True)
    leftover = sorted(_shm_names())

    def identical(run: Dict) -> bool:
        return all(
            got.tobytes() == want.tobytes()
            for got, want in zip(run["results"], reference["results"])
        )

    serialized = max(solo["lowering_seconds"].values())
    critical_path = max(fan["lowering_seconds"].values())
    speedup = serialized / critical_path if critical_path > 0 else float("inf")

    delivers = [sid for event, sid in kill["events"] if event == "deliver"]
    kill_snap = kill["snapshot"]
    return {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metric": (
            "host-lowering CPU seconds per data-plane worker "
            "(process_time deltas between snapshots); speedup = single "
            "worker's lowering time / busiest of 4 workers (concurrent "
            "critical path).  Wall seconds are recorded unadjusted: on "
            "a 1-CPU container concurrent workers timeslice, so wall "
            "does not improve even though per-process lowering work "
            "genuinely parallelizes."
        ),
        "cpus": os.cpu_count(),
        "pool_tpus": POOL_TPUS,
        "requests": REQUESTS,
        "gemm_shape": [GEMM_M, GEMM_K, GEMM_N],
        "plan_cache": False,
        "inprocess_wall_seconds": round(reference["wall_seconds"], 3),
        "one_worker": {
            "lowering_seconds": {
                str(k): round(v, 4) for k, v in solo["lowering_seconds"].items()
            },
            "wall_seconds": round(solo["wall_seconds"], 3),
            "bit_identical": identical(solo),
        },
        "four_workers": {
            "lowering_seconds": {
                str(k): round(v, 4) for k, v in fan["lowering_seconds"].items()
            },
            "critical_path_seconds": round(critical_path, 4),
            "wall_seconds": round(fan["wall_seconds"], 3),
            "bit_identical": identical(fan),
            "completed": fan["snapshot"]["outcomes"]["completed"],
            "lost": fan["snapshot"]["outcomes"]["lost"],
        },
        "host_lowering_speedup": round(speedup, 2),
        "worker_kill": {
            "killed_pid": kill["killed_pid"],
            "completed": kill_snap["outcomes"]["completed"],
            "lost": kill_snap["outcomes"]["lost"],
            "crashes": kill_snap["workers"]["crashes"],
            "requeued": kill_snap["workers"]["requeued"],
            "alive": kill_snap["workers"]["alive"],
            "bit_identical": identical(kill),
            "delivers": len(delivers),
            "duplicate_delivers": len(delivers) - len(set(delivers)),
        },
        "shm_leftover": leftover,
    }


def write_results(results: Dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


@pytest.mark.slow
def test_multiproc_bench(report):
    results = run_benchmark()
    write_results(results)
    report(json.dumps(results, indent=2))
    assert results["one_worker"]["bit_identical"]
    assert results["four_workers"]["bit_identical"]
    assert results["four_workers"]["lost"] == 0
    assert results["four_workers"]["completed"] == REQUESTS
    # Every worker must have carried lowering work (the spread is real).
    assert len(results["four_workers"]["lowering_seconds"]) == WORKERS
    assert all(
        v > 0.0 for v in results["four_workers"]["lowering_seconds"].values()
    )
    assert results["host_lowering_speedup"] >= SPEEDUP_FLOOR
    kill = results["worker_kill"]
    assert kill["killed_pid"] is not None
    assert kill["completed"] == REQUESTS
    assert kill["lost"] == 0
    assert kill["crashes"] == 1
    assert kill["bit_identical"]
    assert kill["delivers"] == REQUESTS
    assert kill["duplicate_delivers"] == 0
    assert results["shm_leftover"] == []


if __name__ == "__main__":
    out = run_benchmark()
    write_results(out)
    print(json.dumps(out, indent=2))
    print(f"\nwrote {RESULT_PATH}")
