"""Host wall-clock benchmark of the lowering/execution stack itself.

Unlike the Fig. 6–9 benchmarks, which report *simulated* Edge TPU time,
this file measures how long the simulator takes on the host: the real
seconds ``Tensorizer.lower`` (functional execution included) spends on
GEMMs of 512/1024/2048 and on one iteration of each §7.2 application,
for both the vectorized (default) and scalar (`vectorized=False`)
paths.  Results land in ``BENCH_wallclock.json`` at the repo root so
future changes have a perf trajectory to regress against; see
``docs/performance.md`` for how to read it.

Run with::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python -m pytest benchmarks/bench_wallclock.py -m slow

The pytest entry is marked ``slow`` (several minutes of scalar-path
lowering) and is excluded from the tier-1 run.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.apps import all_applications
from repro.edgetpu.isa import Opcode
from repro.host.platform import Platform
from repro.runtime.api import OpenCtpu
from repro.runtime.opqueue import OperationRequest, QuantMode
from repro.runtime.tensorizer import Tensorizer, TensorizerOptions

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"

GEMM_SIZES = (512, 1024, 2048)


def _gemm_request(a: np.ndarray, b: np.ndarray) -> OperationRequest:
    """The request ``tpu_gemm(method="conv2d")`` hands the Tensorizer."""
    return OperationRequest(
        task_id=0,
        opcode=Opcode.CONV2D,
        inputs=(a, b),
        quant=QuantMode.SCALE,
        attrs={"gemm": True},
        input_name="bench",
    )


def time_gemm_lowering(n: int, vectorized: bool, reps: int = 3) -> float:
    """Best-of-*reps* host seconds to lower one n×n×n ``tpu_gemm``."""
    rng = np.random.default_rng(n)
    a = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))
    tz = Tensorizer(options=TensorizerOptions(vectorized=vectorized))
    best = float("inf")
    for _ in range(reps):
        request = _gemm_request(a.copy(), b.copy())
        start = time.perf_counter()
        tz.lower(request)
        best = min(best, time.perf_counter() - start)
    return best


def time_app_iteration(name: str, vectorized: bool) -> float:
    """Host seconds for one GPTPU iteration of a §7.2 application."""
    app = all_applications()[name]
    params = app.default_params()
    if "iterations" in params:
        params["iterations"] = 1
    inputs = app.generate(seed=5, **params)
    ctx = OpenCtpu(
        Platform.with_tpus(1),
        options=TensorizerOptions(vectorized=vectorized),
    )
    start = time.perf_counter()
    app.run_gptpu(inputs, ctx)
    return time.perf_counter() - start


def run_benchmark() -> Dict:
    gemm = {}
    for n in GEMM_SIZES:
        vec = time_gemm_lowering(n, vectorized=True)
        scalar = time_gemm_lowering(n, vectorized=False)
        gemm[str(n)] = {
            "vectorized_seconds": round(vec, 4),
            "scalar_seconds": round(scalar, 4),
            "speedup": round(scalar / vec, 2),
        }
    apps = {}
    for name in sorted(all_applications()):
        vec = time_app_iteration(name, vectorized=True)
        scalar = time_app_iteration(name, vectorized=False)
        apps[name] = {
            "vectorized_seconds": round(vec, 4),
            "scalar_seconds": round(scalar, 4),
            "speedup": round(scalar / vec, 2),
        }
    return {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metric": "host wall-clock seconds (not simulated device time)",
        "gemm_lowering": gemm,
        "app_single_iteration": apps,
        "criterion_speedup_2048_gemm_lowering": gemm["2048"]["speedup"],
    }


def write_results(results: Dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


@pytest.mark.slow
def test_wallclock_bench(report):
    results = run_benchmark()
    write_results(results)
    report(json.dumps(results, indent=2))
    # Acceptance floor: the vectorized path must beat the scalar oracle
    # by >= 5x on the flagship 2048 GEMM lowering.
    assert results["criterion_speedup_2048_gemm_lowering"] >= 5.0


if __name__ == "__main__":
    out = run_benchmark()
    write_results(out)
    print(json.dumps(out, indent=2))
    print(f"\nwrote {RESULT_PATH}")
