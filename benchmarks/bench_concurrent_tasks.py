"""Concurrent task throughput — the §1/§4 multi-tenant promise.

The prototype exists "to allow concurrent GPTPU task execution" (§1):
independent kernels from different callers share the 8 Edge TPUs
through the OPQ/IQ scheduler (§6.1, Fig. 4).  This benchmark submits a
batch of independent GEMM tasks in one sync and measures how batch
throughput scales against running the same tasks one sync at a time —
the scheduler's ability to keep all devices fed.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.host.platform import Platform
from repro.ops.gemm import tpu_gemm
from repro.runtime.api import OpenCtpu

N_TASKS = 12
SIZE = 256


def _inputs():
    rng = np.random.default_rng(99)
    return [
        (rng.uniform(0, 4, (SIZE, SIZE)), rng.uniform(0, 4, (SIZE, SIZE)))
        for _ in range(N_TASKS)
    ]


def test_concurrent_task_throughput(benchmark, report):
    pairs = _inputs()

    def run():
        rows = []
        for tpus in (1, 4, 8):
            # Batched: all tasks enqueued before one sync (the Fig. 4 flow).
            ctx = OpenCtpu(Platform.with_tpus(tpus))
            for a, b in pairs:
                ctx.enqueue(lambda a=a, b=b: tpu_gemm(ctx, a, b))
            batched = ctx.sync().timeline.makespan
            # Work-conserving scheduling should spread busy time evenly:
            # record the per-device balance of the batched run.
            busy = [d.busy_seconds for d in ctx.platform.devices]
            balance = max(busy) / (sum(busy) / len(busy)) if sum(busy) else 1.0
            # Serialized: one task per sync (a naive caller).
            ctx2 = OpenCtpu(Platform.with_tpus(tpus))
            serial = 0.0
            for a, b in pairs:
                ctx2.enqueue(lambda a=a, b=b: tpu_gemm(ctx2, a, b))
                serial += ctx2.sync().timeline.makespan
            rows.append((tpus, batched, serial, N_TASKS / batched, balance))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["TPUs", "batched wall (s)", "serialized wall (s)", "tasks/s (batched)",
             "busy balance (max/mean)"],
            [
                (t, f"{b:.4f}", f"{s:.4f}", f"{rate:.0f}", f"{bal:.2f}")
                for t, b, s, rate, bal in rows
            ],
            title=f"Concurrent execution of {N_TASKS} independent {SIZE}² GEMM tasks",
        )
    )

    by_tpus = {t: (b, s) for t, b, s, _, _ in rows}
    # Batching never loses to serial submission.
    for t, (b, s) in by_tpus.items():
        assert b <= s * 1.02, t
    # Throughput scales with devices for a batch of independent tasks.
    assert by_tpus[8][0] < by_tpus[1][0] / 3.5
    # On one device batching still wins slightly (cross-task pipelining
    # of transfers under execution).
    assert by_tpus[1][0] <= by_tpus[1][1]
    # Busy time stays balanced: with 12 equal tasks on 8 devices the
    # loaded ones take 2 tasks and the rest 1, so max/mean is at most
    # 2 / (12/8) = 4/3 for a work-conserving scheduler.
    balance_by_tpus = {t: bal for t, _, _, _, bal in rows}
    assert balance_by_tpus[1] == pytest.approx(1.0)
    assert balance_by_tpus[4] <= 1.34
    assert balance_by_tpus[8] <= 1.34
