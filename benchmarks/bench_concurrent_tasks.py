"""Concurrent task throughput — the §1/§4 multi-tenant promise.

The prototype exists "to allow concurrent GPTPU task execution" (§1):
independent kernels from different callers share the 8 Edge TPUs
through the OPQ/IQ scheduler (§6.1, Fig. 4).  This benchmark submits a
batch of independent GEMM tasks in one sync and measures how batch
throughput scales against running the same tasks one sync at a time —
the scheduler's ability to keep all devices fed.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.host.platform import Platform
from repro.ops.gemm import tpu_gemm
from repro.runtime.api import OpenCtpu

N_TASKS = 12
SIZE = 256


def _inputs():
    rng = np.random.default_rng(99)
    return [
        (rng.uniform(0, 4, (SIZE, SIZE)), rng.uniform(0, 4, (SIZE, SIZE)))
        for _ in range(N_TASKS)
    ]


def test_concurrent_task_throughput(benchmark, report):
    pairs = _inputs()

    def run():
        rows = []
        for tpus in (1, 4, 8):
            # Batched: all tasks enqueued before one sync (the Fig. 4 flow).
            ctx = OpenCtpu(Platform.with_tpus(tpus))
            for a, b in pairs:
                ctx.enqueue(lambda a=a, b=b: tpu_gemm(ctx, a, b))
            batched = ctx.sync().timeline.makespan
            # Serialized: one task per sync (a naive caller).
            ctx2 = OpenCtpu(Platform.with_tpus(tpus))
            serial = 0.0
            for a, b in pairs:
                ctx2.enqueue(lambda a=a, b=b: tpu_gemm(ctx2, a, b))
                serial += ctx2.sync().timeline.makespan
            rows.append((tpus, batched, serial, N_TASKS / batched))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["TPUs", "batched wall (s)", "serialized wall (s)", "tasks/s (batched)"],
            [(t, f"{b:.4f}", f"{s:.4f}", f"{rate:.0f}") for t, b, s, rate in rows],
            title=f"Concurrent execution of {N_TASKS} independent {SIZE}² GEMM tasks",
        )
    )

    by_tpus = {t: (b, s) for t, b, s, _ in rows}
    # Batching never loses to serial submission.
    for t, (b, s) in by_tpus.items():
        assert b <= s * 1.02, t
    # Throughput scales with devices for a batch of independent tasks.
    assert by_tpus[8][0] < by_tpus[1][0] / 3.5
    # On one device batching still wins slightly (cross-task pipelining
    # of transfers under execution).
    assert by_tpus[1][0] <= by_tpus[1][1]
