"""Extension benchmarks: where the Edge TPU's applicability boundary lies.

§8.2 states the selection criterion for the paper's seven apps: inputs
must "preserve the form of matrix inputs" and map to "reasonable matrix
operations" — Edge TPUs are *not* expected to win workloads without
matrix-level arithmetic intensity.  These benchmarks probe that boundary
from the losing side with the two §10-adjacent extensions:

* prefix scan / reduction (after [93]): O(n^1.5) MACs for O(n) useful
  work, every byte through the 6 ms/MB PCIe toll;
* relational GROUP BY aggregation (after [92]): O(1) useful work per
  byte.

Both map exactly and stay accurate, and both lose to the CPU — the
quantitative content is *how much*, and how the gap trends with
arithmetic intensity.
"""

import numpy as np
import pytest

from repro.apps.relational import RelationalApp
from repro.bench import format_table
from repro.host.platform import Platform
from repro.metrics import rmse_percent
from repro.ops.scan import tpu_prefix_sum
from repro.runtime.api import OpenCtpu


def test_scan_boundary(benchmark, report):
    def run():
        rows = []
        for n in (1 << 12, 1 << 14, 1 << 16):
            x = np.random.default_rng(n).uniform(0, 4, n)
            platform = Platform.with_tpus(1)
            ctx = OpenCtpu(platform)
            scan = tpu_prefix_sum(ctx, x)
            tpu_seconds = ctx.sync().wall_seconds
            cpu_seconds = platform.cpu.stream_seconds(n * 16)  # one cumsum pass
            rows.append((n, cpu_seconds, tpu_seconds, rmse_percent(scan, np.cumsum(x))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["n", "CPU cumsum (s)", "Edge TPU scan (s)", "TPU/CPU", "RMSE %"],
            [(n, f"{c:.2e}", f"{t:.2e}", f"{t / c:.0f}x", f"{r:.2f}") for n, c, t, r in rows],
            title="Extension: prefix scan (matrix method of [93]) vs one CPU pass",
        )
    )
    for n, cpu_s, tpu_s, rmse in rows:
        # The mapping is accurate...
        assert rmse < 1.5, n
        # ...but a memory-bound primitive cannot beat the PCIe toll
        # (the §8.2 boundary, measured).
        assert tpu_s > cpu_s, n


def test_relational_boundary(benchmark, report):
    app = RelationalApp()

    def run():
        rows = []
        for measures in (8, 32, 128):
            inputs = app.generate(seed=7, rows=1 << 15, groups=64, measures=measures)
            platform = Platform.with_tpus(1)
            ctx = OpenCtpu(platform)
            cpu = app.run_cpu(inputs, platform.cpu)
            gptpu = app.run_gptpu(inputs, ctx)
            rows.append(
                (
                    measures,
                    cpu.seconds,
                    gptpu.wall_seconds,
                    gptpu.wall_seconds / cpu.seconds,
                    rmse_percent(gptpu.value, cpu.value),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["measures", "CPU (s)", "GPTPU (s)", "TPU/CPU", "RMSE %"],
            [(m, f"{c:.2e}", f"{t:.2e}", f"{ratio:.1f}x", f"{r:.2f}")
             for m, c, t, ratio, r in rows],
            title="Extension: masked GROUP BY aggregation (after [92]), 32K rows",
        )
    )
    ratios = [ratio for _m, _c, _t, ratio, _r in rows]
    # Accurate everywhere, slower everywhere (the boundary)...
    for _m, _c, _t, ratio, rmse in rows:
        assert rmse < 1.0
        assert ratio > 1.0
    # ...but the gap narrows as arithmetic intensity (measure count)
    # grows — the trend that makes GEMM-shaped workloads winners.
    assert ratios[-1] < ratios[0]
